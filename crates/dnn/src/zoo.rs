//! Model zoo: architecturally faithful TinyML workloads.
//!
//! These mirror the four MLPerf-Tiny benchmark networks plus two smaller
//! helpers. Weight *values* are deterministic synthetic data (timing and
//! memory behaviour do not depend on learned values), but the layer
//! topologies — and therefore MAC counts, weight-block sizes, and
//! activation footprints — follow the published architectures:
//!
//! | model | task | params (≈) | input |
//! |-------|------|-----------|-------|
//! | [`ds_cnn`] | keyword spotting | 23 k | 49×10×1 MFCC |
//! | [`resnet8`] | image classification | 78 k | 32×32×3 |
//! | [`mobilenet_v1_025`] | visual wake word | 220 k | 96×96×3 |
//! | [`autoencoder`] | anomaly detection | 267 k | 640 features |
//! | [`lenet5`] | digit classification | 61 k | 28×28×1 |
//! | [`micro_mlp`] | sensor classification | 0.7 k | 16 features |

use crate::builder::ModelBuilder;
use crate::graph::Model;
use crate::layer::Padding;
use crate::tensor::Shape;

/// DS-CNN keyword-spotting network (Hello-Edge "S" variant): one
/// full convolution followed by four depthwise-separable blocks,
/// global average pooling, and a 12-way classifier.
pub fn ds_cnn() -> Model {
    let mut b = ModelBuilder::new("ds-cnn", Shape::new(49, 10, 1)).conv2d(
        64,
        (10, 4),
        (2, 2),
        Padding::Same,
        true,
    );
    for _ in 0..4 {
        b = b.separable(64, (1, 1), true);
    }
    b.global_avg_pool().dense(12, false).softmax().build()
}

/// ResNet-8 (MLPerf-Tiny image classification): a 16-channel stem and
/// three residual stacks at 16/32/64 channels; the widening stacks use
/// 1×1 projection shortcuts.
pub fn resnet8() -> Model {
    ModelBuilder::new("resnet8", Shape::new(32, 32, 3))
        .conv2d(16, (3, 3), (1, 1), Padding::Same, true)
        // Stack 1: identity shortcut, 16 channels.
        .checkpoint()
        .conv2d(16, (3, 3), (1, 1), Padding::Same, true)
        .conv2d(16, (3, 3), (1, 1), Padding::Same, false)
        .add_from_checkpoint(true)
        // Stack 2: stride-2, widen to 32 — projection shortcut.
        .checkpoint()
        .conv2d(32, (3, 3), (2, 2), Padding::Same, true)
        .conv2d(32, (3, 3), (1, 1), Padding::Same, false)
        .add_with_projection((2, 2), true)
        // Stack 3: stride-2, widen to 64 — projection shortcut.
        .checkpoint()
        .conv2d(64, (3, 3), (2, 2), Padding::Same, true)
        .conv2d(64, (3, 3), (1, 1), Padding::Same, false)
        .add_with_projection((2, 2), true)
        .global_avg_pool()
        .dense(10, false)
        .softmax()
        .build()
}

/// MobileNetV1 at width multiplier 0.25 (MLPerf-Tiny visual wake word):
/// a stride-2 stem and 13 depthwise-separable blocks, binary classifier.
pub fn mobilenet_v1_025() -> Model {
    ModelBuilder::new("mobilenet-v1-025", Shape::new(96, 96, 3))
        .conv2d(8, (3, 3), (2, 2), Padding::Same, true)
        .separable(16, (1, 1), true)
        .separable(32, (2, 2), true)
        .separable(32, (1, 1), true)
        .separable(64, (2, 2), true)
        .separable(64, (1, 1), true)
        .separable(128, (2, 2), true)
        .separable(128, (1, 1), true)
        .separable(128, (1, 1), true)
        .separable(128, (1, 1), true)
        .separable(128, (1, 1), true)
        .separable(128, (1, 1), true)
        .separable(256, (2, 2), true)
        .separable(256, (1, 1), true)
        .global_avg_pool()
        .dense(2, false)
        .softmax()
        .build()
}

/// Dense autoencoder (MLPerf-Tiny anomaly detection): 640-feature
/// spectrogram in, symmetric 128/8/128 bottleneck, reconstruction out.
pub fn autoencoder() -> Model {
    ModelBuilder::new("autoencoder", Shape::flat(640))
        .dense(128, true)
        .dense(128, true)
        .dense(128, true)
        .dense(128, true)
        .dense(8, true)
        .dense(128, true)
        .dense(128, true)
        .dense(128, true)
        .dense(128, true)
        .dense(640, false)
        .build()
}

/// Classic LeNet-5 digit classifier (28×28 grayscale).
pub fn lenet5() -> Model {
    ModelBuilder::new("lenet5", Shape::new(28, 28, 1))
        .conv2d(6, (5, 5), (1, 1), Padding::Same, true)
        .max_pool((2, 2), (2, 2))
        .conv2d(16, (5, 5), (1, 1), Padding::Valid, true)
        .max_pool((2, 2), (2, 2))
        .dense(120, true)
        .dense(84, true)
        .dense(10, false)
        .softmax()
        .build()
}

/// A very small MLP for low-rate sensor tasks — useful as the short-period
/// high-priority task in scheduling mixes.
pub fn micro_mlp() -> Model {
    ModelBuilder::new("micro-mlp", Shape::flat(16))
        .dense(16, true)
        .dense(8, true)
        .dense(4, false)
        .build()
}

/// Every zoo model, in ascending weight-size order.
pub fn all() -> Vec<Model> {
    vec![
        micro_mlp(),
        ds_cnn(),
        lenet5(),
        resnet8(),
        mobilenet_v1_025(),
        autoencoder(),
    ]
}

/// Looks a zoo model up by its [`Model::name`].
pub fn by_name(name: &str) -> Option<Model> {
    match name {
        "micro-mlp" => Some(micro_mlp()),
        "ds-cnn" => Some(ds_cnn()),
        "lenet5" => Some(lenet5()),
        "resnet8" => Some(resnet8()),
        "mobilenet-v1-025" => Some(mobilenet_v1_025()),
        "autoencoder" => Some(autoencoder()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::QuantParams;
    use crate::tensor::Tensor;

    fn weight_kb(m: &Model) -> u64 {
        m.total_weight_bytes() / 1024
    }

    #[test]
    fn parameter_counts_match_published_architectures() {
        // Tolerant bands: synthetic weights, exact architectures.
        assert!(
            (15..35).contains(&weight_kb(&ds_cnn())),
            "ds-cnn {} kB",
            weight_kb(&ds_cnn())
        );
        assert!(
            (60..100).contains(&weight_kb(&resnet8())),
            "resnet8 {} kB",
            weight_kb(&resnet8())
        );
        assert!(
            (180..280).contains(&weight_kb(&mobilenet_v1_025())),
            "mobilenet {} kB",
            weight_kb(&mobilenet_v1_025())
        );
        assert!(
            (230..300).contains(&weight_kb(&autoencoder())),
            "autoencoder {} kB",
            weight_kb(&autoencoder())
        );
        assert!(
            (40..80).contains(&weight_kb(&lenet5())),
            "lenet5 {} kB",
            weight_kb(&lenet5())
        );
        assert!(micro_mlp().total_weight_bytes() < 2048);
    }

    #[test]
    fn output_shapes_match_tasks() {
        assert_eq!(ds_cnn().output_shape().len(), 12);
        assert_eq!(resnet8().output_shape().len(), 10);
        assert_eq!(mobilenet_v1_025().output_shape().len(), 2);
        assert_eq!(autoencoder().output_shape().len(), 640);
        assert_eq!(lenet5().output_shape().len(), 10);
        assert_eq!(micro_mlp().output_shape().len(), 4);
    }

    #[test]
    fn every_model_infers_on_patterned_input() {
        for model in all() {
            let mut input = Tensor::filled_pattern(model.input_shape(), 0xA5);
            input.set_quant(QuantParams::symmetric(0.1));
            let out = model.infer(&input).expect("inference");
            assert_eq!(out.shape(), model.output_shape(), "{}", model.name());
        }
    }

    #[test]
    fn zoo_inference_is_reproducible_golden() {
        // Golden check: a fixed input yields a stable argmax. If kernels
        // or weight generation change, this trips.
        let model = ds_cnn();
        let mut input = Tensor::filled_pattern(model.input_shape(), 0xBEEF);
        input.set_quant(QuantParams::symmetric(0.1));
        let a = model.infer(&input).expect("inference");
        let b = model.infer(&input).expect("inference");
        assert_eq!(a.data(), b.data());
        assert!(a.argmax().is_some());
    }

    #[test]
    fn by_name_round_trips() {
        for model in all() {
            let again = by_name(model.name()).expect("known name");
            assert_eq!(again.name(), model.name());
            assert_eq!(again.total_weight_bytes(), model.total_weight_bytes());
        }
        assert!(by_name("does-not-exist").is_none());
    }

    #[test]
    fn all_is_sorted_by_weight_size() {
        let sizes: Vec<u64> = all().iter().map(Model::total_weight_bytes).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
    }

    #[test]
    fn macs_are_in_expected_ranges() {
        // MobileNet dominates; micro-mlp is trivial.
        assert!(mobilenet_v1_025().total_macs() > 5_000_000);
        assert!(ds_cnn().total_macs() > 1_000_000);
        assert!(micro_mlp().total_macs() < 1_000);
    }
}
