//! T4 — runtime of the schedulability analyses vs task-set size.
//! Admission runs in design-time tooling; all tests must stay
//! interactive (sub-second) at realistic sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rtmdm_mcusim::PlatformConfig;
use rtmdm_sched::analysis::{
    edf_demand_test, rta_limited_preemption, rta_limited_preemption_with, SchedulerMode,
};
use rtmdm_sched::assign::audsley;
use rtmdm_sched::gen::{generate, TasksetParams};

fn platform() -> PlatformConfig {
    PlatformConfig::stm32f746_qspi()
}

fn bench_rta(c: &mut Criterion) {
    let p = platform();
    let mut g = c.benchmark_group("rta_limited_preemption");
    for n in [4usize, 8, 16, 32, 64] {
        let ts = generate(&TasksetParams::baseline(n, 300_000), &p, 7);
        g.bench_with_input(BenchmarkId::from_parameter(n), &ts, |b, ts| {
            b.iter(|| rta_limited_preemption(ts, &p))
        });
    }
    g.finish();
}

fn bench_rta_work_conserving(c: &mut Criterion) {
    let p = platform();
    let ts = generate(&TasksetParams::baseline(16, 300_000), &p, 7);
    c.bench_function("rta_work_conserving_16", |b| {
        b.iter(|| rta_limited_preemption_with(&ts, &p, SchedulerMode::WorkConserving))
    });
}

fn bench_edf(c: &mut Criterion) {
    let p = platform();
    let mut g = c.benchmark_group("edf_demand_test");
    for n in [4usize, 8, 16, 32] {
        let ts = generate(&TasksetParams::baseline(n, 300_000), &p, 7);
        g.bench_with_input(BenchmarkId::from_parameter(n), &ts, |b, ts| {
            b.iter(|| edf_demand_test(ts, &p))
        });
    }
    g.finish();
}

fn bench_audsley(c: &mut Criterion) {
    let p = platform();
    let ts = generate(&TasksetParams::baseline(8, 250_000), &p, 7);
    c.bench_function("audsley_opa_8", |b| b.iter(|| audsley(&ts, &p)));
}

criterion_group!(
    benches,
    bench_rta,
    bench_rta_work_conserving,
    bench_edf,
    bench_audsley
);
criterion_main!(benches);
