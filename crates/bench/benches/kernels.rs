//! T5 — micro-benchmarks of the int8 inference kernels on
//! representative zoo layers (host throughput; MCU timing comes from the
//! cost model, but these keep the engine honest).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use rtmdm_dnn::kernels;
use rtmdm_dnn::{Layer, LayerKind, Padding, QuantParams, Shape, Tensor};

fn input(shape: Shape) -> Tensor {
    let mut t = Tensor::filled_pattern(shape, 0xC0FFEE);
    t.set_quant(QuantParams::symmetric(0.1));
    t
}

fn bench_conv(c: &mut Criterion) {
    // resnet8 stack-3 layer: 8×8×64 → 8×8×64, 3×3.
    let kind = LayerKind::Conv2d {
        in_c: 64,
        out_c: 64,
        kernel: (3, 3),
        stride: (1, 1),
        padding: Padding::Same,
        relu: true,
    };
    let layer = Layer::with_synthetic_weights("conv", kind, 1);
    let x = input(Shape::new(8, 8, 64));
    let mut g = c.benchmark_group("kernels");
    g.throughput(Throughput::Elements(kind.macs(x.shape())));
    g.bench_function("conv2d_8x8x64_3x3", |b| {
        b.iter(|| kernels::conv2d(&x, &layer))
    });
    g.finish();
}

fn bench_depthwise(c: &mut Criterion) {
    // mobilenet block: 24×24×32 depthwise 3×3.
    let kind = LayerKind::DepthwiseConv2d {
        channels: 32,
        kernel: (3, 3),
        stride: (1, 1),
        padding: Padding::Same,
        relu: true,
    };
    let layer = Layer::with_synthetic_weights("dw", kind, 2);
    let x = input(Shape::new(24, 24, 32));
    let mut g = c.benchmark_group("kernels");
    g.throughput(Throughput::Elements(kind.macs(x.shape())));
    g.bench_function("depthwise_24x24x32_3x3", |b| {
        b.iter(|| kernels::depthwise_conv2d(&x, &layer))
    });
    g.finish();
}

fn bench_dense(c: &mut Criterion) {
    // autoencoder layer: 640 → 128.
    let kind = LayerKind::Dense {
        in_features: 640,
        out_features: 128,
        relu: true,
    };
    let layer = Layer::with_synthetic_weights("fc", kind, 3);
    let x = input(Shape::flat(640));
    let mut g = c.benchmark_group("kernels");
    g.throughput(Throughput::Elements(kind.macs(x.shape())));
    g.bench_function("dense_640x128", |b| b.iter(|| kernels::dense(&x, &layer)));
    g.finish();
}

fn bench_pool_and_softmax(c: &mut Criterion) {
    let x = input(Shape::new(32, 32, 16));
    c.bench_function("avg_pool_32x32x16_2x2", |b| {
        b.iter(|| kernels::avg_pool2d(&x, (2, 2), (2, 2)))
    });
    c.bench_function("global_avg_pool_32x32x16", |b| {
        b.iter(|| kernels::global_avg_pool(&x))
    });
    let logits = input(Shape::flat(12));
    c.bench_function("softmax_12", |b| b.iter(|| kernels::softmax(&logits)));
}

fn bench_full_models(c: &mut Criterion) {
    use rtmdm_dnn::zoo;
    for model in [zoo::micro_mlp(), zoo::ds_cnn(), zoo::resnet8()] {
        let x = input(model.input_shape());
        c.bench_function(&format!("infer_{}", model.name()), |b| {
            b.iter(|| model.infer(&x).expect("inference"))
        });
    }
}

criterion_group!(
    benches,
    bench_conv,
    bench_depthwise,
    bench_dense,
    bench_pool_and_softmax,
    bench_full_models
);
criterion_main!(benches);
