//! Throughput of the discrete-event scheduler simulator — the substrate
//! every miss-ratio experiment runs on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use rtmdm_mcusim::{Cycles, FaultPlan, PlatformConfig};
use rtmdm_sched::gen::{generate, TasksetParams};
use rtmdm_sched::sim::{simulate, Engine, Policy, SimConfig};

fn bench_simulator(c: &mut Criterion) {
    let p = PlatformConfig::stm32f746_qspi();
    let ts = generate(&TasksetParams::baseline(4, 300_000), &p, 3);
    let horizon = Cycles::new(200_000_000); // 1 simulated second
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(horizon.get()));
    g.bench_function("gated_4tasks_1s", |b| {
        b.iter(|| simulate(&ts, &p, &SimConfig::new(horizon, Policy::FixedPriority)))
    });
    g.bench_function("gated_4tasks_1s_legacy", |b| {
        b.iter(|| {
            simulate(
                &ts,
                &p,
                &SimConfig::new(horizon, Policy::FixedPriority).with_engine(Engine::Legacy),
            )
        })
    });
    g.bench_function("work_conserving_4tasks_1s", |b| {
        b.iter(|| {
            simulate(
                &ts,
                &p,
                &SimConfig::new(horizon, Policy::FixedPriority).work_conserving(),
            )
        })
    });
    g.bench_function("edf_4tasks_1s", |b| {
        b.iter(|| simulate(&ts, &p, &SimConfig::new(horizon, Policy::Edf)))
    });
    g.finish();
}

fn bench_jittered(c: &mut Criterion) {
    let p = PlatformConfig::stm32f746_qspi();
    let ts = generate(&TasksetParams::baseline(4, 300_000), &p, 3);
    let config = SimConfig {
        horizon: Cycles::new(200_000_000),
        policy: Policy::FixedPriority,
        exec_scale_min_ppm: 500_000,
        seed: 11,
        work_conserving: false,
        fault: FaultPlan::NONE,
        engine: Engine::Des,
        attribution: false,
        staging_window: 2,
    };
    c.bench_function("simulator/jittered_4tasks_1s", |b| {
        b.iter(|| simulate(&ts, &p, &config))
    });
}

criterion_group!(benches, bench_simulator, bench_jittered);
criterion_main!(benches);
