//! Re-export of the shared scoped worker pool.
//!
//! The pool started life here (PR 1) and moved to the dedicated
//! [`rtmdm_par`] crate when the admission service in `rtmdm-core`
//! needed it too (`rtmdm-bench` depends on `rtmdm-core`, so the pool
//! could not stay in this crate). This module keeps the historical
//! `rtmdm_bench::par::*` paths working for the experiment harness and
//! its bin wrappers; see [`rtmdm_par`] for the contract and tests.

pub use rtmdm_par::{num_threads, par_map_seeded, par_map_with_threads};
