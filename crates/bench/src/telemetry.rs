//! Machine-readable telemetry for the experiment harness.
//!
//! `run_all` enables the global metrics registry, diffs snapshots
//! around every experiment, and writes two JSON documents next to the
//! human-readable tables:
//!
//! - `results/metrics.json` — the full [`RunMetrics`] record: per
//!   experiment wall time, simulated-run counts, sim-cycle throughput,
//!   the aggregate registry snapshot, and a deterministic probe
//!   (pipeline counters over the model zoo plus the timeline summary
//!   of a small fixed scenario);
//! - `BENCH_run_all.json` at the repo root — the schema-stable
//!   [`BenchSummary`] subset tracked across commits.
//!
//! Wall times are nondeterministic by nature; everything else in these
//! documents is exact and independent of `RTMDM_THREADS`.

use std::path::PathBuf;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use rtmdm_core::{RtMdm, TaskSpec};
use rtmdm_dnn::{zoo, CostModel};
use rtmdm_mcusim::{Cycles, PlatformConfig};
use rtmdm_obs::{Registry, Snapshot, Timeline, TimelineSummary};
use rtmdm_xmem::{pipeline, segment_model, ExecutionStrategy};

/// Version of the `metrics.json` / `BENCH_run_all.json` layout.
///
/// v2: added per-task response-time percentiles (`probe.response` in
/// `metrics.json`, `response` in `BENCH_run_all.json`).
/// v3: added the admission-service fleet throughput record (`fleet`
/// in both documents; see [`FleetComparison`]).
/// v4: added the explorer fork-versus-replay throughput record
/// (`explore` in both documents; see [`ExploreComparison`]).
pub const SCHEMA_VERSION: u64 = 4;

/// Telemetry of one experiment invocation inside `run_all`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentMetrics {
    /// Experiment id (`t1_models`, `f3_miss_ratio`, …).
    pub id: String,
    /// Wall-clock duration of the experiment, in seconds.
    pub wall_seconds: f64,
    /// Simulator invocations the experiment performed (configs × seeds).
    pub sim_runs: u64,
    /// Simulated cycles covered by those runs.
    pub sim_cycles: u64,
    /// Simulated cycles retired per wall-clock second (0 when the
    /// experiment ran no simulations or finished below timer precision).
    pub sim_cycles_per_second: f64,
}

impl ExperimentMetrics {
    /// Builds the record for one experiment from its wall time and the
    /// registry snapshots taken before and after it ran.
    pub fn from_snapshots(id: &str, wall: Duration, before: &Snapshot, after: &Snapshot) -> Self {
        let wall_seconds = wall.as_secs_f64();
        let sim_runs = after.counter_delta(before, "sim.runs");
        let sim_cycles = after.counter_delta(before, "sim.cycles");
        let sim_cycles_per_second = if wall_seconds > 1e-9 && sim_cycles > 0 {
            sim_cycles as f64 / wall_seconds
        } else {
            0.0
        };
        ExperimentMetrics {
            id: id.to_owned(),
            wall_seconds,
            sim_runs,
            sim_cycles,
            sim_cycles_per_second,
        }
    }
}

/// DES-versus-legacy simulator throughput on a fixed probe scenario
/// (see `experiments::engine_comparison`). The rates and speedup are
/// wall-clock based and therefore nondeterministic; `equivalent` is
/// exact — it records whether both engines produced the identical
/// trace, stats, and metrics on the probe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineComparison {
    /// Simulated cycles of the probe scenario (per engine).
    pub sim_cycles: u64,
    /// Simulated cycles retired per wall second, discrete-event engine.
    pub des_cycles_per_second: f64,
    /// Simulated cycles retired per wall second, legacy advance loop.
    pub legacy_cycles_per_second: f64,
    /// `des_cycles_per_second / legacy_cycles_per_second`.
    pub speedup: f64,
    /// Whether both engines agreed byte-for-byte on the probe.
    pub equivalent: bool,
}

/// Cold-versus-warm admission-service throughput over a synthetic
/// device fleet (see `experiments::fleet_comparison`). The rates and
/// speedup are wall-clock based and therefore nondeterministic;
/// `identical` is exact — it records whether the cached (warm) answers
/// were byte-identical to the cache-free (cold) answers of the same
/// request lines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetComparison {
    /// Total queries in the synthetic fleet.
    pub fleet_size: u64,
    /// Distinct (platform, options, task mix) configurations.
    pub distinct_configs: u64,
    /// Queries answered cold (fresh service per query) for the baseline.
    pub cold_sample: u64,
    /// Queries per wall second with a fresh service per query.
    pub cold_queries_per_second: f64,
    /// Queries per wall second through one shared, warmed service.
    pub warm_queries_per_second: f64,
    /// `warm_queries_per_second / cold_queries_per_second`.
    pub speedup: f64,
    /// Whether warm answers matched cold answers byte for byte.
    pub identical: bool,
}

/// Fork-versus-replay schedule-space-explorer throughput on the F14
/// scale workload (see `experiments::explore_comparison`). The rates
/// and speedup are wall-clock based and therefore nondeterministic;
/// `identical` is exact — it records whether both strategies produced
/// byte-identical verdicts, counters, and witness JSON on every scale
/// cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExploreComparison {
    /// Task count of the timed cell (the largest scale row, ≥ 6).
    pub tasks: u64,
    /// Distinct `(state, choice-point)` pairs both strategies expanded.
    pub states: u64,
    /// Oracle transitions both strategies took.
    pub transitions: u64,
    /// States expanded per wall second, fork strategy, single thread.
    pub fork_states_per_second: f64,
    /// Transitions per wall second, fork strategy, single thread.
    pub fork_transitions_per_second: f64,
    /// States expanded per wall second, replay strategy, single thread.
    pub replay_states_per_second: f64,
    /// Transitions per wall second, replay strategy, single thread.
    pub replay_transitions_per_second: f64,
    /// `fork_states_per_second / replay_states_per_second`.
    pub speedup: f64,
    /// Whether fork and replay agreed byte-for-byte on every cell.
    pub identical: bool,
}

/// Whole-run aggregates over every experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunTotals {
    /// Sum of per-experiment wall seconds (excludes harness overhead).
    pub wall_seconds: f64,
    /// Total simulator invocations.
    pub sim_runs: u64,
    /// Total simulated cycles.
    pub sim_cycles: u64,
}

/// Per-task response-time distribution of the probe scenario.
///
/// Percentiles are upper bucket bounds of the simulator's log₂
/// response histogram
/// ([`ResponseHist::percentile_upper`](rtmdm_sched::sim::ResponseHist::percentile_upper)):
/// exact, deterministic, and `None` when the task completed no jobs.
/// `max_response` is the exact observed maximum.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskResponseSummary {
    /// Task name.
    pub task: String,
    /// Completed jobs the distribution covers.
    pub completions: u64,
    /// Upper bound on the median response, in cycles.
    pub p50_upper: Option<u64>,
    /// Upper bound on the 95th-percentile response, in cycles.
    pub p95_upper: Option<u64>,
    /// Upper bound on the 99th-percentile response, in cycles.
    pub p99_upper: Option<u64>,
    /// Exact maximum observed response, in cycles.
    pub max_response: u64,
}

impl TaskResponseSummary {
    /// Extracts the summary of one task from its simulator statistics.
    pub fn from_stats(name: &str, stats: &rtmdm_sched::sim::TaskStats) -> Self {
        let pct = |p: u64| stats.response_hist.percentile_upper(p).map(Cycles::get);
        TaskResponseSummary {
            task: name.to_owned(),
            completions: stats.completions,
            p50_upper: pct(50),
            p95_upper: pct(95),
            p99_upper: pct(99),
            max_response: stats.max_response.get(),
        }
    }
}

/// Deterministic cross-check embedded in `metrics.json`: the same
/// numbers must come out on every machine and thread count, so a diff
/// against a previous run flags semantic drift immediately.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Probe {
    /// Pipeline counters from staging every zoo model once.
    pub pipeline: Snapshot,
    /// Timeline summary of a fixed two-task scenario (seed 0).
    pub timeline: TimelineSummary,
    /// Per-task response percentiles of the same fixed scenario.
    pub response: Vec<TaskResponseSummary>,
}

/// The full `results/metrics.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Layout version, bumped on breaking changes.
    pub schema_version: u64,
    /// Worker threads the harness ran with.
    pub workers: u64,
    /// One record per experiment, in execution order.
    pub experiments: Vec<ExperimentMetrics>,
    /// Aggregates over the experiment records.
    pub totals: RunTotals,
    /// The global registry at the end of the run.
    pub registry: Snapshot,
    /// Deterministic probe numbers (see [`Probe`]).
    pub probe: Probe,
    /// DES-versus-legacy engine throughput (see [`EngineComparison`]).
    pub engine: EngineComparison,
    /// Cold-versus-warm admission-service fleet throughput (see
    /// [`FleetComparison`]).
    pub fleet: FleetComparison,
    /// Fork-versus-replay explorer throughput (see
    /// [`ExploreComparison`]).
    pub explore: ExploreComparison,
}

/// One entry of [`BenchSummary`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchExperiment {
    /// Experiment id.
    pub id: String,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
}

/// The schema-stable `BENCH_run_all.json` subset: per-experiment wall
/// seconds plus total simulated cycles. Tools tracking performance
/// across commits may rely on exactly these fields.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchSummary {
    /// Layout version, bumped on breaking changes.
    pub schema_version: u64,
    /// One entry per experiment, in execution order.
    pub experiments: Vec<BenchExperiment>,
    /// Sum of per-experiment wall seconds.
    pub total_wall_seconds: f64,
    /// Total simulated cycles across the run.
    pub total_sim_cycles: u64,
    /// DES-versus-legacy engine throughput on the probe scenario.
    pub engine: EngineComparison,
    /// Per-task response percentiles of the probe scenario
    /// (deterministic; see [`TaskResponseSummary`]).
    pub response: Vec<TaskResponseSummary>,
    /// Cold-versus-warm admission-service fleet throughput (see
    /// [`FleetComparison`]).
    pub fleet: FleetComparison,
    /// Fork-versus-replay explorer throughput (see
    /// [`ExploreComparison`]).
    pub explore: ExploreComparison,
}

impl RunMetrics {
    /// Assembles the document from per-experiment records, the final
    /// registry snapshot, and the throughput comparisons.
    pub fn new(
        workers: usize,
        experiments: Vec<ExperimentMetrics>,
        registry: Snapshot,
        engine: EngineComparison,
        fleet: FleetComparison,
        explore: ExploreComparison,
    ) -> Self {
        let totals = RunTotals {
            wall_seconds: experiments.iter().map(|e| e.wall_seconds).sum(),
            sim_runs: experiments.iter().map(|e| e.sim_runs).sum(),
            sim_cycles: experiments.iter().map(|e| e.sim_cycles).sum(),
        };
        RunMetrics {
            schema_version: SCHEMA_VERSION,
            workers: workers as u64,
            experiments,
            totals,
            registry,
            probe: probe(),
            engine,
            fleet,
            explore,
        }
    }

    /// The [`BenchSummary`] subset of this record.
    pub fn bench_summary(&self) -> BenchSummary {
        BenchSummary {
            schema_version: SCHEMA_VERSION,
            experiments: self
                .experiments
                .iter()
                .map(|e| BenchExperiment {
                    id: e.id.clone(),
                    wall_seconds: e.wall_seconds,
                })
                .collect(),
            total_wall_seconds: self.totals.wall_seconds,
            total_sim_cycles: self.totals.sim_cycles,
            engine: self.engine.clone(),
            response: self.probe.response.clone(),
            fleet: self.fleet.clone(),
            explore: self.explore.clone(),
        }
    }
}

/// Computes the deterministic probe: pipeline staging counters over the
/// whole model zoo plus the timeline summary of a fixed scenario.
pub fn probe() -> Probe {
    // Pipeline counters: stage every zoo model once, overlapped, on the
    // reference platform with a 48 KiB double buffer.
    let platform = PlatformConfig::stm32f746_qspi();
    let cost = CostModel::cmsis_nn_m7();
    let mut reg = Registry::new();
    for model in zoo::all() {
        if let Ok(seg) = segment_model(&model, &cost, 48 * 1024) {
            let stages =
                pipeline::stage_timings(&seg, &platform, ExecutionStrategy::OverlappedPrefetch);
            pipeline::record_stage_metrics(&stages, &mut reg);
        }
    }
    // Timeline summary: keyword spotting + image classification for one
    // simulated second, no jitter, seed 0.
    let mut fw = RtMdm::new(platform).expect("reference platform is valid");
    fw.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))
        .expect("kws task admits");
    fw.add_task(TaskSpec::new("ic", zoo::resnet8(), 400_000, 400_000))
        .expect("ic task admits");
    let run = fw
        .simulate_with(1_000_000, 1_000_000, 0)
        .expect("probe scenario simulates");
    let timeline = Timeline::from_trace(&run.result.trace, run.result.horizon).summary();
    let response = run
        .names
        .iter()
        .zip(&run.result.stats)
        .map(|(name, stats)| TaskResponseSummary::from_stats(name, stats))
        .collect();
    Probe {
        pipeline: reg.snapshot(),
        timeline,
        response,
    }
}

/// Repo-root path of the schema-stable summary file.
pub fn bench_summary_path() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → repo root is two levels up.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("BENCH_run_all.json");
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_is_deterministic() {
        let a = probe();
        let b = probe();
        assert_eq!(
            serde_json::to_string(&a.pipeline).unwrap(),
            serde_json::to_string(&b.pipeline).unwrap()
        );
        assert_eq!(a.timeline.horizon, b.timeline.horizon);
        assert_eq!(a.timeline.cpu_busy, b.timeline.cpu_busy);
        assert_eq!(a.timeline.dma_busy, b.timeline.dma_busy);
        // The partition invariant holds on the probe scenario too.
        assert_eq!(
            a.timeline.cpu_busy + a.timeline.cpu_idle,
            a.timeline.horizon
        );
        assert!(a.pipeline.counter("pipeline.stages") > 0);
        // Response percentiles: one entry per task, identical across
        // runs, ordered like the percentiles they approximate.
        assert_eq!(a.response, b.response);
        assert_eq!(a.response.len(), 2);
        assert_eq!(a.response[0].task, "kws");
        for r in &a.response {
            assert!(r.completions > 0, "{r:?}");
            let (p50, p95, p99) = (
                r.p50_upper.expect("completed"),
                r.p95_upper.expect("completed"),
                r.p99_upper.expect("completed"),
            );
            assert!(p50 <= p95 && p95 <= p99, "{r:?}");
            assert!(r.max_response > 0, "{r:?}");
        }
    }

    #[test]
    fn metrics_document_round_trips_and_sums() {
        let before = Snapshot::default();
        let mut reg = Registry::new();
        reg.add("sim.runs", 3);
        reg.add("sim.cycles", 600);
        let after = reg.snapshot();
        let e = ExperimentMetrics::from_snapshots(
            "f3_miss_ratio",
            Duration::from_millis(250),
            &before,
            &after,
        );
        assert_eq!(e.sim_runs, 3);
        assert_eq!(e.sim_cycles, 600);
        assert!(e.sim_cycles_per_second > 0.0);
        let engine = EngineComparison {
            sim_cycles: 200,
            des_cycles_per_second: 4.0,
            legacy_cycles_per_second: 2.0,
            speedup: 2.0,
            equivalent: true,
        };
        let fleet = FleetComparison {
            fleet_size: 100_000,
            distinct_configs: 16,
            cold_sample: 16,
            cold_queries_per_second: 10.0,
            warm_queries_per_second: 100.0,
            speedup: 10.0,
            identical: true,
        };
        let explore = ExploreComparison {
            tasks: 8,
            states: 2_000,
            transitions: 40_000,
            fork_states_per_second: 5_000.0,
            fork_transitions_per_second: 100_000.0,
            replay_states_per_second: 500.0,
            replay_transitions_per_second: 10_000.0,
            speedup: 10.0,
            identical: true,
        };
        let doc = RunMetrics::new(4, vec![e.clone(), e], after, engine, fleet, explore);
        assert_eq!(doc.totals.sim_runs, 6);
        assert_eq!(doc.totals.sim_cycles, 1200);
        let json = serde_json::to_string(&doc).unwrap();
        let back: RunMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.experiments.len(), 2);
        assert_eq!(back.totals.sim_cycles, 1200);
        let summary = doc.bench_summary();
        assert_eq!(summary.experiments.len(), 2);
        assert_eq!(summary.total_sim_cycles, 1200);
        let sjson = serde_json::to_string(&summary).unwrap();
        let sback: BenchSummary = serde_json::from_str(&sjson).unwrap();
        assert_eq!(sback.experiments[0].id, "f3_miss_ratio");
        assert!(sback.engine.equivalent);
        assert_eq!(sback.engine.speedup, 2.0);
        // The summary carries the probe's per-task percentiles.
        assert_eq!(sback.response, doc.probe.response);
        assert!(!sback.response.is_empty());
        // …and the fleet throughput record.
        assert!(sback.fleet.identical);
        assert_eq!(sback.fleet.fleet_size, 100_000);
        assert_eq!(sback.fleet.speedup, 10.0);
    }

    #[test]
    fn zero_wall_time_does_not_divide_by_zero() {
        let empty = Snapshot::default();
        let e = ExperimentMetrics::from_snapshots("t1_models", Duration::ZERO, &empty, &empty);
        assert_eq!(e.sim_cycles_per_second, 0.0);
    }
}
