//! Figure F10 — the same workload across platform classes.
//!
//! Each platform preset is an independent cell for [`par_map_seeded`];
//! rows come back in preset order.

use rtmdm_core::{report, RtMdm, TaskSpec};
use rtmdm_dnn::zoo;
use rtmdm_mcusim::PlatformConfig;

use crate::par::par_map_seeded;

use super::ms;

/// F10 — cross-platform study: the three-DNN sensor-node workload on
/// every preset. Expected shape: the low-end M4 cannot carry the mix at
/// all (compute); the F746 carries it with moderate occupancy; the H743
/// coasts; the ideal-SRAM control isolates the cost of external memory
/// on the F746 (same CPU).
pub fn f10_platforms() -> String {
    let rows = par_map_seeded(PlatformConfig::presets(), |platform| {
        let name = platform.name.clone();
        let cpu = platform.cpu;
        let mut fw = match RtMdm::new(platform) {
            Ok(fw) => fw,
            Err(e) => {
                return vec![
                    name,
                    format!("invalid: {e}"),
                    String::new(),
                    String::new(),
                    String::new(),
                ]
            }
        };
        let added = fw
            .add_task(TaskSpec::new("control", zoo::micro_mlp(), 20_000, 20_000))
            .and_then(|()| fw.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000)))
            .and_then(|()| fw.add_task(TaskSpec::new("ic", zoo::resnet8(), 400_000, 400_000)));
        if let Err(e) = added {
            return vec![
                name,
                format!("rejected: {e}"),
                String::new(),
                String::new(),
                String::new(),
            ];
        }
        match fw.admit() {
            Ok(a) => {
                let verdict = if a.schedulable() { "yes" } else { "NO" };
                let (misses, control) = match fw.simulate(5_000_000) {
                    Ok(run) => (
                        run.deadline_misses().to_string(),
                        run.max_response_of("control")
                            .map(|c| ms(c, cpu))
                            .unwrap_or_else(|| "n/a".into()),
                    ),
                    Err(_) => ("n/a".into(), "n/a".into()),
                };
                vec![
                    name,
                    verdict.to_owned(),
                    report::ppm_as_pct(a.occupancy_ppm),
                    misses,
                    control,
                ]
            }
            Err(e) => vec![
                name,
                format!("rejected: {e}"),
                String::new(),
                String::new(),
                String::new(),
            ],
        }
    });
    report::table(
        &[
            "platform",
            "admitted",
            "occupancy",
            "misses (5 s)",
            "control max ms",
        ],
        &rows,
    )
}
