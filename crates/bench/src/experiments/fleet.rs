//! Figure F15 — admission-service throughput over a synthetic fleet.
//!
//! A fleet deployment asks the admission service the same questions
//! over and over: thousands of devices share a handful of distinct
//! (platform, task mix, options) configurations, differing only in
//! their request ids. This experiment builds a ≥100 k-query fleet over
//! a small distinct-configuration pool and measures queries/second
//! **cold** (a fresh [`Service`] per query — every sub-problem computed
//! from scratch) against **warm** (one shared service answering the
//! whole fleet through its content-addressed cache).
//!
//! The deterministic per-configuration table (verdict, occupancy,
//! headroom, and the warm-equals-cold byte-identity gate) lands in
//! `results/f15_fleet.txt`; the wall-clock rates are nondeterministic
//! and go to `BENCH_run_all.json` via [`FleetComparison`], never into
//! the byte-pinned table.

use std::sync::OnceLock;
use std::time::Instant;

use rtmdm_core::{report, Service};
use serde::Content;

use crate::telemetry::FleetComparison;

/// Total queries in the synthetic fleet.
const FLEET_SIZE: usize = 100_000;

/// One distinct device configuration of the pool.
struct Config {
    label: &'static str,
    platform: &'static str,
    options: &'static str,
    tasks: &'static str,
}

/// The distinct-configuration pool: platforms × task mixes × analysis
/// options that exercise every admission path (admit, analysis reject,
/// memory reject, EDF, ablations).
fn pool() -> Vec<Config> {
    let c = |label, platform, options, tasks| Config {
        label,
        platform,
        options,
        tasks,
    };
    vec![
        c(
            "f746/kws",
            "stm32f746-qspi",
            "{}",
            r#"[{"name":"kws","model":"ds-cnn","period_us":100000}]"#,
        ),
        c(
            "f746/kws+ic",
            "stm32f746-qspi",
            "{}",
            r#"[{"name":"kws","model":"ds-cnn","period_us":100000},{"name":"ic","model":"resnet8","period_us":400000}]"#,
        ),
        c(
            "f746/ctl+kws+ic",
            "stm32f746-qspi",
            "{}",
            r#"[{"name":"ctl","model":"micro-mlp","period_us":10000},{"name":"kws","model":"ds-cnn","period_us":100000},{"name":"ic","model":"resnet8","period_us":400000}]"#,
        ),
        c(
            "f746/vww",
            "stm32f746-qspi",
            "{}",
            r#"[{"name":"vww","model":"mobilenet-v1-025","period_us":500000}]"#,
        ),
        c(
            "f746/ae-tight",
            "stm32f746-qspi",
            "{}",
            r#"[{"name":"ae","model":"autoencoder","period_us":4000}]"#,
        ),
        c(
            "f746/kws+ic/edf",
            "stm32f746-qspi",
            r#"{"policy":"edf"}"#,
            r#"[{"name":"kws","model":"ds-cnn","period_us":100000},{"name":"ic","model":"resnet8","period_us":400000}]"#,
        ),
        c(
            "f746/kws+ic/wc",
            "stm32f746-qspi",
            r#"{"work_conserving":true}"#,
            r#"[{"name":"kws","model":"ds-cnn","period_us":100000},{"name":"ic","model":"resnet8","period_us":400000}]"#,
        ),
        c(
            "f746/ae/oblivious",
            "stm32f746-qspi",
            r#"{"dma_aware_analysis":false}"#,
            r#"[{"name":"ae","model":"autoencoder","period_us":4000}]"#,
        ),
        c(
            "f746/kws/whole-dnn",
            "stm32f746-qspi",
            r#"{"force_strategy":"whole-dnn"}"#,
            r#"[{"name":"kws","model":"ds-cnn","period_us":100000}]"#,
        ),
        c(
            "f746/vww-small-buf",
            "stm32f746-qspi",
            "{}",
            r#"[{"name":"vww","model":"mobilenet-v1-025","period_us":500000,"buffer_bytes":4096}]"#,
        ),
        c(
            "h743/kws+ic+ae",
            "stm32h743-ospi",
            "{}",
            r#"[{"name":"kws","model":"ds-cnn","period_us":100000},{"name":"ic","model":"resnet8","period_us":400000},{"name":"ae","model":"autoencoder","period_us":400000}]"#,
        ),
        c(
            "h743/vww+lenet",
            "stm32h743-ospi",
            "{}",
            r#"[{"name":"vww","model":"mobilenet-v1-025","period_us":500000},{"name":"ocr","model":"lenet5","period_us":200000}]"#,
        ),
        c(
            "m4/ctl",
            "cortex-m4-lowend",
            "{}",
            r#"[{"name":"ctl","model":"micro-mlp","period_us":10000}]"#,
        ),
        c(
            "m4/kws",
            "cortex-m4-lowend",
            "{}",
            r#"[{"name":"kws","model":"ds-cnn","period_us":100000}]"#,
        ),
        c(
            "m4/kws-fast",
            "cortex-m4-lowend",
            "{}",
            r#"[{"name":"kws","model":"ds-cnn","period_us":40000}]"#,
        ),
        c(
            "sram/kws+ic",
            "ideal-sram",
            "{}",
            r#"[{"name":"kws","model":"ds-cnn","period_us":100000},{"name":"ic","model":"resnet8","period_us":400000}]"#,
        ),
    ]
}

/// Renders the request line of fleet member `i` (configuration
/// `i % pool`, device-unique id).
fn request_line(configs: &[Config], i: usize) -> String {
    let c = &configs[i % configs.len()];
    format!(
        r#"{{"id":"dev-{i:06}","platform":"{}","options":{},"tasks":{}}}"#,
        c.platform, c.options, c.tasks
    )
}

/// Extracts a field of an answer line for the table (the answers are
/// the service's own canonical JSON; a missing field renders as `?`
/// and would fail the identity gate anyway).
fn field(answer: &str, key: &str) -> String {
    let doc: Content = match serde_json::from_str(answer) {
        Ok(doc) => doc,
        Err(_) => return "?".to_owned(),
    };
    match doc.get(key) {
        Some(Content::Str(s)) => s.clone(),
        Some(Content::U64(n)) => n.to_string(),
        Some(Content::Bool(b)) => b.to_string(),
        _ => "?".to_owned(),
    }
}

/// Everything the probe produces: the deterministic table and the
/// wall-clock comparison. Computed once; `f15_fleet` and
/// `fleet_comparison` share the result so `run_all` times the fleet
/// exactly once.
struct FleetProbe {
    table: String,
    comparison: FleetComparison,
}

fn run_probe() -> FleetProbe {
    let configs = pool();
    let lines: Vec<String> = (0..FLEET_SIZE).map(|i| request_line(&configs, i)).collect();

    // Cold: a fresh service per query, so nothing is ever reused. One
    // query per distinct configuration is enough of a sample — cold
    // cost is per-configuration, not per-device.
    let cold_sample = configs.len();
    let cold_start = Instant::now();
    let cold: Vec<String> = lines[..cold_sample]
        .iter()
        .map(|line| Service::new().answer_line(line))
        .collect();
    let cold_wall = cold_start.elapsed().as_secs_f64();

    // Warm: one shared service answers the whole fleet as a sharded
    // batch; after the first pool cycle every query is a full-response
    // cache hit.
    let service = Service::new();
    let warm_start = Instant::now();
    let warm = service.answer_batch(lines);
    let warm_wall = warm_start.elapsed().as_secs_f64();

    // The correctness gate: warm answers must be byte-identical to the
    // cold, cache-free answers of the same request lines.
    let identical = cold == warm[..cold_sample];

    let qps = |queries: usize, wall: f64| {
        if wall > 1e-9 {
            queries as f64 / wall
        } else {
            0.0
        }
    };
    let cold_qps = qps(cold_sample, cold_wall);
    let warm_qps = qps(FLEET_SIZE, warm_wall);
    let comparison = FleetComparison {
        fleet_size: FLEET_SIZE as u64,
        distinct_configs: configs.len() as u64,
        cold_sample: cold_sample as u64,
        cold_queries_per_second: cold_qps,
        warm_queries_per_second: warm_qps,
        speedup: if cold_qps > 0.0 {
            warm_qps / cold_qps
        } else {
            0.0
        },
        identical,
    };

    let rows: Vec<Vec<String>> = configs
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let warm_answer = &warm[i];
            vec![
                c.label.to_owned(),
                c.platform.to_owned(),
                field(warm_answer, "verdict"),
                field(warm_answer, "occupancy_ppm"),
                field(warm_answer, "headroom_ppm"),
                if cold[i] == *warm_answer { "yes" } else { "NO" }.to_owned(),
            ]
        })
        .collect();
    let mut table = report::table(
        &[
            "config",
            "platform",
            "verdict",
            "occupancy-ppm",
            "headroom-ppm",
            "warm==cold",
        ],
        &rows,
    );
    table.push_str(&format!(
        "\nfleet: {} queries over {} distinct configs; every response above \
         answered identically with and without the cache\n",
        FLEET_SIZE,
        configs.len()
    ));
    FleetProbe { table, comparison }
}

fn probe() -> &'static FleetProbe {
    static PROBE: OnceLock<FleetProbe> = OnceLock::new();
    PROBE.get_or_init(run_probe)
}

/// F15 — the deterministic fleet table (`results/f15_fleet.txt`).
pub fn f15_fleet() -> String {
    probe().table.clone()
}

/// The wall-clock cold-versus-warm throughput record for
/// `BENCH_run_all.json`. Shares one probe run with [`f15_fleet`].
pub fn fleet_comparison() -> FleetComparison {
    probe().comparison.clone()
}
