//! Figure F13 — deadline-miss forensics on a pinned overload scenario.
//!
//! The workload is the overload fixture of the F12 equivalence grid
//! (four generated tasks at 80 % utilization, 20 % DMA fault rate,
//! seed 23) simulated once with attribution anchors on. The table
//! decomposes every task's summed response time into the six causal
//! terms — compute, preemption, blocking fetch, bus contention, fault
//! re-fetch, dispatch wait — and lists each missed job with its
//! dominant interference source, exactly as `rtmdm explain` would.
//! Everything is deterministic and lands in `results/f13_blame.txt`;
//! the conservation invariant (`response = Σ terms`, zero tolerance)
//! is re-validated on every run.

use rtmdm_core::report;
use rtmdm_mcusim::{FaultPlan, TaskId, DEFAULT_MAX_RETRIES};
use rtmdm_obs::attribute;
use rtmdm_sched::gen::{generate, TasksetParams};
use rtmdm_sched::sim::{simulate, Engine, Policy, SimConfig};

use crate::experiments::eval_platform;

/// Share of `part` in `whole`, rendered as a percentage with one
/// decimal.
fn share(part: rtmdm_mcusim::Cycles, whole: rtmdm_mcusim::Cycles) -> String {
    if whole.is_zero() {
        return "n/a".to_owned();
    }
    let ppm = part.get() as u128 * 1_000_000 / whole.get() as u128;
    format!("{}.{}", ppm / 10_000, (ppm % 10_000) / 1_000)
}

/// F13 — per-task blame decomposition and ranked miss forensics.
pub fn f13_blame() -> String {
    let platform = eval_platform();
    let mut params = TasksetParams::baseline(4, 800_000);
    params.segments_range = (2, 5);
    params.fetch_compute_ratio_ppm = 300_000;
    let ts = generate(&params, &platform, 23);
    let horizon = ts.tasks().iter().map(|t| t.period).max().unwrap() * 4;
    let config = SimConfig {
        horizon,
        policy: Policy::FixedPriority,
        exec_scale_min_ppm: 1_000_000,
        seed: 23,
        work_conserving: false,
        fault: FaultPlan {
            seed: 23,
            dma_fault_rate_ppm: 200_000,
            max_retries: DEFAULT_MAX_RETRIES,
            jitter_max_cycles: 50,
        },
        engine: Engine::Des,
        attribution: true,
        staging_window: 2,
    };
    let run = simulate(&ts, &platform, &config);
    let report = attribute(&run.trace).expect("decomposition conserves response time");
    let name = |task: TaskId| -> String {
        ts.tasks()
            .get(task.0)
            .map(|t| t.name.clone())
            .unwrap_or_else(|| task.to_string())
    };

    let mut rows = Vec::new();
    for (&task, t) in &report.tasks {
        let total = t.total();
        rows.push(vec![
            name(task),
            t.jobs.to_string(),
            t.misses.to_string(),
            t.max_response.to_string(),
            share(t.compute, total),
            share(t.preemption_total(), total),
            share(t.blocking_fetch, total),
            share(t.bus_contention, total),
            share(t.fault_refetch, total),
            share(t.dispatch_wait, total),
            match t.dominant_interference() {
                Some((src, _)) => src.to_string(),
                None => "none".to_owned(),
            },
        ]);
    }
    let mut out = report::table(
        &[
            "task",
            "jobs",
            "miss",
            "max resp",
            "compute %",
            "preempt %",
            "blocking %",
            "bus %",
            "refetch %",
            "dispatch %",
            "dominant",
        ],
        &rows,
    );

    out.push('\n');
    let missed = report.missed_jobs();
    if missed.is_empty() {
        out.push_str("no deadline misses\n");
        return out;
    }
    let rows: Vec<Vec<String>> = missed
        .iter()
        .map(|j| {
            let interference = j.response.saturating_sub(j.compute);
            vec![
                name(j.task),
                j.job.to_string(),
                j.response.to_string(),
                j.compute.to_string(),
                interference.to_string(),
                match j.dominant_interference() {
                    Some((src, c)) => format!("{src} ({c})"),
                    None => "none (compute-bound)".to_owned(),
                },
            ]
        })
        .collect();
    out.push_str(&report::table(
        &[
            "missed job",
            "job#",
            "response",
            "compute",
            "interference",
            "dominant source",
        ],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f13_is_deterministic_and_names_a_dominant_source_per_miss() {
        let a = f13_blame();
        let b = f13_blame();
        assert_eq!(a, b);
        // The pinned overload scenario must actually miss, and every
        // missed job's row must name a dominant interference source.
        assert!(a.contains("missed job"), "{a}");
        for line in a.lines().skip_while(|l| !l.starts_with("missed job")) {
            assert!(!line.contains("none (compute-bound)"), "{a}");
        }
    }
}
