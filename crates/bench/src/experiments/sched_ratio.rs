//! Figures F2 (schedulability ratio), F3 (simulated miss behaviour),
//! and F7 (priority-assignment comparison).
//!
//! Each sweep expands its `(utilization, seed)` grid into cells for
//! [`par_map_seeded`]; results come back in input order, so the fold
//! into per-utilization rows reproduces the serial loop byte for byte.

use rtmdm_core::report;
use rtmdm_sched::analysis::{
    rta_limited_preemption, rta_limited_preemption_with, rta_memory_oblivious,
    sync_simulation_verdict, SchedulerMode, SyncVerdict,
};
use rtmdm_sched::assign::{audsley, dm_order, rm_order};
use rtmdm_sched::baseline;
use rtmdm_sched::gen::{generate, TasksetParams};
use rtmdm_sched::sim::{simulate, Policy, SimConfig};
use rtmdm_sched::TaskSet;

use crate::par::par_map_seeded;

use super::{eval_platform, pct};

fn params(n: usize, util_pct: u64) -> TasksetParams {
    let mut p = TasksetParams::baseline(n, util_pct * 10_000);
    p.segments_range = (3, 6);
    p.fetch_compute_ratio_ppm = 200_000;
    p
}

/// The five admission policies compared in F2/F3.
fn policies() -> Vec<&'static str> {
    vec![
        "rt-mdm (gated)",
        "rt-mdm (work-conserving)",
        "B1 fetch-then-compute",
        "B2 whole-dnn",
        "B4 memory-oblivious",
    ]
}

fn admit(ts: &TaskSet, which: usize) -> bool {
    let p = eval_platform();
    let ordered = ts.reordered(&dm_order(ts));
    match which {
        0 => rta_limited_preemption_with(&ordered, &p, SchedulerMode::Gated).schedulable,
        1 => rta_limited_preemption_with(&ordered, &p, SchedulerMode::WorkConserving).schedulable,
        2 => {
            let b1 = baseline::transform_set(&ordered, |t| baseline::fetch_then_compute(t, &p));
            rta_limited_preemption(&b1, &p).schedulable
        }
        3 => {
            let b2 = baseline::transform_set(&ordered, |t| {
                baseline::whole_job(&baseline::fetch_then_compute(t, &p))
            });
            rta_limited_preemption(&b2, &p).schedulable
        }
        4 => rta_memory_oblivious(&ordered, &p).schedulable,
        _ => unreachable!(),
    }
}

/// Expands a `utils × seeds` grid into cells and folds the per-cell
/// results back into one row of counts per utilization.
fn sweep_grid<R, F, A>(utils: &[u64], sets: u32, cell: F) -> Vec<(u64, A)>
where
    R: Send,
    F: Fn(u64, u32) -> R + Sync,
    A: Default,
    A: Extend<R>,
{
    let cells: Vec<(u64, u32)> = utils
        .iter()
        .flat_map(|&u| (0..sets).map(move |s| (u, s)))
        .collect();
    let results = par_map_seeded(cells, |(util, seed)| cell(util, seed));
    let mut folded = Vec::with_capacity(utils.len());
    let mut it = results.into_iter();
    for &util in utils {
        let mut acc = A::default();
        acc.extend(it.by_ref().take(sets as usize));
        folded.push((util, acc));
    }
    folded
}

/// F2 — fraction of random task sets each admission test accepts, per
/// total compute utilization. Expected shape: gated rt-mdm dominates B1
/// and B2 everywhere; work-conserving trades blocking for interference
/// (crossing gated at low utilization); the memory-oblivious curve sits
/// highest — and F3 shows why that is not a virtue.
pub fn f2_sched_ratio() -> String {
    const SETS: u32 = 300;
    let utils = [5u64, 10, 15, 20, 25, 30, 40, 50, 60];
    let per_util: Vec<(u64, Vec<[bool; 5]>)> = sweep_grid(&utils, SETS, |util, seed| {
        let ts = generate(&params(4, util), &eval_platform(), u64::from(seed));
        let mut verdicts = [false; 5];
        for (i, v) in verdicts.iter_mut().enumerate() {
            *v = admit(&ts, i);
        }
        verdicts
    });
    let mut rows = Vec::new();
    for (util, verdicts) in per_util {
        let mut accepted = [0u32; 5];
        for v in &verdicts {
            for (acc, &ok) in accepted.iter_mut().zip(v) {
                *acc += u32::from(ok);
            }
        }
        let mut row = vec![format!("{util}%")];
        row.extend(accepted.iter().map(|&a| pct(a, SETS)));
        rows.push(row);
    }
    let mut headers = vec!["compute util"];
    headers.extend(policies());
    let main = report::table(&headers, &rows);

    // Second panel: analysis vs empirical acceptance. Grid periods keep
    // hyperperiods within 2 s, so every set can be exhaustively
    // simulated from the synchronous release pattern (an *upper* bound
    // on true sporadic schedulability). The gap between the two curves
    // is the analysis's pessimism.
    const SETS2: u32 = 120;
    let utils2 = [10u64, 20, 30, 40, 50, 60, 70];
    let per_util2: Vec<(u64, Vec<(bool, SyncVerdict)>)> =
        sweep_grid(&utils2, SETS2, |util, seed| {
            let prm = params(4, util).with_grid_periods();
            let ts = generate(&prm, &eval_platform(), u64::from(seed));
            let ordered = ts.reordered(&dm_order(&ts));
            let analytical = rta_limited_preemption(&ordered, &eval_platform()).schedulable;
            let empirical =
                sync_simulation_verdict(&ordered, &eval_platform(), Policy::FixedPriority, false);
            (analytical, empirical)
        });
    let mut rows2 = Vec::new();
    // An over-cap hyperperiod is *inconclusive*, not a rejection
    // (mirroring RTM053's never-silently-safe rule): such cells are
    // counted separately and flagged below instead of quietly deflating
    // the empirical curve. Grid periods keep every hyperperiod under
    // the cap, so this count is zero and the table stays byte-stable;
    // the note only appears if the grid ever changes.
    let mut inconclusive_cells = 0u32;
    for (util, verdicts) in per_util2 {
        let analytical = verdicts.iter().map(|&(a, _)| u32::from(a)).sum::<u32>();
        let empirical = verdicts
            .iter()
            .map(|&(_, e)| u32::from(e == SyncVerdict::Accepted))
            .sum::<u32>();
        inconclusive_cells += verdicts
            .iter()
            .map(|&(_, e)| u32::from(e == SyncVerdict::Inconclusive))
            .sum::<u32>();
        rows2.push(vec![
            format!("{util}%"),
            pct(analytical, SETS2),
            pct(empirical, SETS2),
        ]);
    }
    let second = report::table(
        &[
            "compute util",
            "rt-mdm analysis",
            "empirical (sync simulation)",
        ],
        &rows2,
    );
    let note = if inconclusive_cells > 0 {
        format!(
            "\nnote: {inconclusive_cells} cells had hyperperiods past the \
             simulation cap (inconclusive, excluded from the empirical curve)"
        )
    } else {
        String::new()
    };
    format!("{main}\nanalysis vs empirical acceptance (grid periods):\n{second}{note}")
}

/// Per-cell outcome of the F3 sweep.
struct MissCell {
    /// Admitted by gated / B1 / memory-oblivious analysis.
    admitted: [bool; 3],
    /// ... and then missed a deadline in simulation.
    missed: [bool; 3],
    /// Jobs released / missed under the gated runtime.
    jobs_total: u64,
    jobs_missed: u64,
}

/// F3 — what actually happens on the platform: per policy, the fraction
/// of *admitted* sets that then miss a deadline in simulation (must be 0
/// for every sound analysis, and is decidedly not 0 for the
/// memory-oblivious baseline), plus the raw job-level miss ratio when
/// every set is run regardless of admission.
pub fn f3_miss_ratio() -> String {
    const SETS: u32 = 100;
    let utils = [10u64, 20, 30, 40, 50];
    let per_util: Vec<(u64, Vec<MissCell>)> = sweep_grid(&utils, SETS, |util, seed| {
        let p = eval_platform();
        let ts = generate(&params(4, util), &p, u64::from(seed));
        let ordered = ts.reordered(&dm_order(&ts));
        let horizon = ordered.tasks().iter().map(|t| t.period).max().unwrap() * 4;
        let config = SimConfig::new(horizon, Policy::FixedPriority);

        let mut cell = MissCell {
            admitted: [false; 3],
            missed: [false; 3],
            jobs_total: 0,
            jobs_missed: 0,
        };

        // Gated rt-mdm.
        let run = simulate(&ordered, &p, &config);
        cell.jobs_total = run.stats.iter().map(|s| s.releases).sum::<u64>();
        cell.jobs_missed = run.total_misses();
        if rta_limited_preemption(&ordered, &p).schedulable {
            cell.admitted[0] = true;
            cell.missed[0] = run.total_misses() > 0;
        }
        // B1.
        let b1 = baseline::transform_set(&ordered, |t| baseline::fetch_then_compute(t, &p));
        if rta_limited_preemption(&b1, &p).schedulable {
            cell.admitted[1] = true;
            cell.missed[1] = simulate(&b1, &p, &config).total_misses() > 0;
        }
        // B4: memory-oblivious admission, reality-check on the real
        // platform semantics (gated runtime).
        if rta_memory_oblivious(&ordered, &p).schedulable {
            cell.admitted[2] = true;
            cell.missed[2] = run.total_misses() > 0;
        }
        cell
    });
    let mut rows = Vec::new();
    for (util, cells) in per_util {
        let mut admitted = [0u32; 3];
        let mut admitted_missed = [0u32; 3];
        let mut jobs_total = 0u64;
        let mut jobs_missed = 0u64;
        for c in &cells {
            for i in 0..3 {
                admitted[i] += u32::from(c.admitted[i]);
                admitted_missed[i] += u32::from(c.admitted[i] && c.missed[i]);
            }
            jobs_total += c.jobs_total;
            jobs_missed += c.jobs_missed;
        }
        rows.push(vec![
            format!("{util}%"),
            format!("{}/{}", admitted_missed[0], admitted[0]),
            format!("{}/{}", admitted_missed[1], admitted[1]),
            format!("{}/{}", admitted_missed[2], admitted[2]),
            format!(
                "{:.2}%",
                100.0 * jobs_missed as f64 / jobs_total.max(1) as f64
            ),
        ]);
    }
    report::table(
        &[
            "compute util",
            "gated admitted→missed",
            "B1 admitted→missed",
            "B4 oblivious admitted→missed",
            "raw job miss ratio (gated)",
        ],
        &rows,
    )
}

/// F7 — priority assignment: RM vs DM vs Audsley OPA acceptance under
/// the gated rt-mdm analysis, constrained deadlines. Expected shape:
/// OPA ≥ DM ≥ RM at every utilization.
pub fn f7_opa() -> String {
    const SETS: u32 = 300;
    let utils = [25u64, 35, 45, 55, 65, 75];
    let per_util: Vec<(u64, Vec<[bool; 3]>)> = sweep_grid(&utils, SETS, |util, seed| {
        let p = eval_platform();
        let mut prm = params(4, util);
        prm.deadline_factor_range_ppm = (500_000, 1_000_000);
        let ts = generate(&prm, &p, u64::from(seed));
        [
            rta_limited_preemption(&ts.reordered(&rm_order(&ts)), &p).schedulable,
            rta_limited_preemption(&ts.reordered(&dm_order(&ts)), &p).schedulable,
            audsley(&ts, &p).is_some(),
        ]
    });
    let mut rows = Vec::new();
    for (util, verdicts) in per_util {
        let mut wins = [0u32; 3];
        for v in &verdicts {
            for (w, &ok) in wins.iter_mut().zip(v) {
                *w += u32::from(ok);
            }
        }
        rows.push(vec![
            format!("{util}%"),
            pct(wins[0], SETS),
            pct(wins[1], SETS),
            pct(wins[2], SETS),
        ]);
    }
    report::table(&["compute util", "RM", "DM", "Audsley OPA"], &rows)
}
