//! Figures F2 (schedulability ratio), F3 (simulated miss behaviour),
//! and F7 (priority-assignment comparison).

use rtmdm_core::report;
use rtmdm_sched::analysis::{
    rta_limited_preemption, rta_limited_preemption_with, rta_memory_oblivious,
    sync_simulation_accepts, SchedulerMode,
};
use rtmdm_sched::assign::{audsley, dm_order, rm_order};
use rtmdm_sched::baseline;
use rtmdm_sched::gen::{generate, TasksetParams};
use rtmdm_sched::sim::{simulate, Policy, SimConfig};
use rtmdm_sched::TaskSet;

use super::{eval_platform, pct};

fn params(n: usize, util_pct: u64) -> TasksetParams {
    let mut p = TasksetParams::baseline(n, util_pct * 10_000);
    p.segments_range = (3, 6);
    p.fetch_compute_ratio_ppm = 200_000;
    p
}

/// The five admission policies compared in F2/F3.
fn policies() -> Vec<&'static str> {
    vec![
        "rt-mdm (gated)",
        "rt-mdm (work-conserving)",
        "B1 fetch-then-compute",
        "B2 whole-dnn",
        "B4 memory-oblivious",
    ]
}

fn admit(ts: &TaskSet, which: usize) -> bool {
    let p = eval_platform();
    let ordered = ts.reordered(&dm_order(ts));
    match which {
        0 => rta_limited_preemption_with(&ordered, &p, SchedulerMode::Gated).schedulable,
        1 => rta_limited_preemption_with(&ordered, &p, SchedulerMode::WorkConserving).schedulable,
        2 => {
            let b1 = baseline::transform_set(&ordered, |t| baseline::fetch_then_compute(t, &p));
            rta_limited_preemption(&b1, &p).schedulable
        }
        3 => {
            let b2 = baseline::transform_set(&ordered, |t| {
                baseline::whole_job(&baseline::fetch_then_compute(t, &p))
            });
            rta_limited_preemption(&b2, &p).schedulable
        }
        4 => rta_memory_oblivious(&ordered, &p).schedulable,
        _ => unreachable!(),
    }
}

/// F2 — fraction of random task sets each admission test accepts, per
/// total compute utilization. Expected shape: gated rt-mdm dominates B1
/// and B2 everywhere; work-conserving trades blocking for interference
/// (crossing gated at low utilization); the memory-oblivious curve sits
/// highest — and F3 shows why that is not a virtue.
pub fn f2_sched_ratio() -> String {
    const SETS: u32 = 300;
    let mut rows = Vec::new();
    for util in [5u64, 10, 15, 20, 25, 30, 40, 50, 60] {
        let mut accepted = [0u32; 5];
        for seed in 0..SETS {
            let ts = generate(&params(4, util), &eval_platform(), u64::from(seed));
            for (i, acc) in accepted.iter_mut().enumerate() {
                if admit(&ts, i) {
                    *acc += 1;
                }
            }
        }
        let mut row = vec![format!("{util}%")];
        row.extend(accepted.iter().map(|&a| pct(a, SETS)));
        rows.push(row);
    }
    let mut headers = vec!["compute util"];
    headers.extend(policies());
    let main = report::table(&headers, &rows);

    // Second panel: analysis vs empirical acceptance. Grid periods keep
    // hyperperiods within 2 s, so every set can be exhaustively
    // simulated from the synchronous release pattern (an *upper* bound
    // on true sporadic schedulability). The gap between the two curves
    // is the analysis's pessimism.
    const SETS2: u32 = 120;
    let mut rows2 = Vec::new();
    for util in [10u64, 20, 30, 40, 50, 60, 70] {
        let mut analytical = 0u32;
        let mut empirical = 0u32;
        for seed in 0..SETS2 {
            let prm = params(4, util).with_grid_periods();
            let ts = generate(&prm, &eval_platform(), u64::from(seed));
            let ordered = ts.reordered(&dm_order(&ts));
            if rta_limited_preemption(&ordered, &eval_platform()).schedulable {
                analytical += 1;
            }
            if sync_simulation_accepts(
                &ordered,
                &eval_platform(),
                Policy::FixedPriority,
                false,
            ) == Some(true)
            {
                empirical += 1;
            }
        }
        rows2.push(vec![
            format!("{util}%"),
            pct(analytical, SETS2),
            pct(empirical, SETS2),
        ]);
    }
    let second = report::table(
        &[
            "compute util",
            "rt-mdm analysis",
            "empirical (sync simulation)",
        ],
        &rows2,
    );
    format!("{main}\nanalysis vs empirical acceptance (grid periods):\n{second}")
}

/// F3 — what actually happens on the platform: per policy, the fraction
/// of *admitted* sets that then miss a deadline in simulation (must be 0
/// for every sound analysis, and is decidedly not 0 for the
/// memory-oblivious baseline), plus the raw job-level miss ratio when
/// every set is run regardless of admission.
pub fn f3_miss_ratio() -> String {
    const SETS: u32 = 100;
    let p = eval_platform();
    let mut rows = Vec::new();
    for util in [10u64, 20, 30, 40, 50] {
        // Columns: admitted-then-missed for gated / B1 / oblivious, and
        // raw job miss ratio under the gated runtime.
        let mut admitted = [0u32; 3];
        let mut admitted_missed = [0u32; 3];
        let mut jobs_total = 0u64;
        let mut jobs_missed = 0u64;
        for seed in 0..SETS {
            let ts = generate(&params(4, util), &p, u64::from(seed));
            let ordered = ts.reordered(&dm_order(&ts));
            let horizon = ordered.tasks().iter().map(|t| t.period).max().unwrap() * 4;
            let config = SimConfig::new(horizon, Policy::FixedPriority);

            // Gated rt-mdm.
            let run = simulate(&ordered, &p, &config);
            jobs_total += run.stats.iter().map(|s| s.releases).sum::<u64>();
            jobs_missed += run.total_misses();
            if rta_limited_preemption(&ordered, &p).schedulable {
                admitted[0] += 1;
                if run.total_misses() > 0 {
                    admitted_missed[0] += 1;
                }
            }
            // B1.
            let b1 = baseline::transform_set(&ordered, |t| baseline::fetch_then_compute(t, &p));
            if rta_limited_preemption(&b1, &p).schedulable {
                admitted[1] += 1;
                if simulate(&b1, &p, &config).total_misses() > 0 {
                    admitted_missed[1] += 1;
                }
            }
            // B4: memory-oblivious admission, reality-check on the real
            // platform semantics (gated runtime).
            if rta_memory_oblivious(&ordered, &p).schedulable {
                admitted[2] += 1;
                if run.total_misses() > 0 {
                    admitted_missed[2] += 1;
                }
            }
        }
        rows.push(vec![
            format!("{util}%"),
            format!("{}/{}", admitted_missed[0], admitted[0]),
            format!("{}/{}", admitted_missed[1], admitted[1]),
            format!("{}/{}", admitted_missed[2], admitted[2]),
            format!(
                "{:.2}%",
                100.0 * jobs_missed as f64 / jobs_total.max(1) as f64
            ),
        ]);
    }
    report::table(
        &[
            "compute util",
            "gated admitted→missed",
            "B1 admitted→missed",
            "B4 oblivious admitted→missed",
            "raw job miss ratio (gated)",
        ],
        &rows,
    )
}

/// F7 — priority assignment: RM vs DM vs Audsley OPA acceptance under
/// the gated rt-mdm analysis, constrained deadlines. Expected shape:
/// OPA ≥ DM ≥ RM at every utilization.
pub fn f7_opa() -> String {
    const SETS: u32 = 300;
    let p = eval_platform();
    let mut rows = Vec::new();
    for util in [25u64, 35, 45, 55, 65, 75] {
        let mut wins = [0u32; 3];
        for seed in 0..SETS {
            let mut prm = params(4, util);
            prm.deadline_factor_range_ppm = (500_000, 1_000_000);
            let ts = generate(&prm, &p, u64::from(seed));
            if rta_limited_preemption(&ts.reordered(&rm_order(&ts)), &p).schedulable {
                wins[0] += 1;
            }
            if rta_limited_preemption(&ts.reordered(&dm_order(&ts)), &p).schedulable {
                wins[1] += 1;
            }
            if audsley(&ts, &p).is_some() {
                wins[2] += 1;
            }
        }
        rows.push(vec![
            format!("{util}%"),
            pct(wins[0], SETS),
            pct(wins[1], SETS),
            pct(wins[2], SETS),
        ]);
    }
    report::table(&["compute util", "RM", "DM", "Audsley OPA"], &rows)
}
