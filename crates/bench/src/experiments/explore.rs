//! Figure F14 — explorer scale: schedule-space size versus task count.
//!
//! One synthetic task set per row (fixed generator seed, grid periods),
//! explored exhaustively with a two-endpoint execution-time dimension
//! (WCET and 60 % of WCET per job). The columns are the search
//! counters: distinct canonical `(state, choice-point)` pairs, full
//! simulation runs, transitions taken, and the verdict — `safe` when
//! the lattice was covered without a violation, a rule ID when the
//! explorer reached one, `inconclusive` when the state budget ran out.
//!
//! Everything in the table is deterministic (the explorer's DFS order
//! is fixed), so the table is byte-pinned like every other
//! `results/*.txt`. Wall time is nondeterministic by nature and lands
//! in `BENCH_run_all.json` via the harness telemetry, per the same
//! discipline as the F12 engine throughput probe.
//!
//! The scale companion (`results/f14_explore_scale.txt`) extends the
//! same workload family to 6–8 tasks and runs every cell under **both**
//! exploration strategies, single-threaded: `fork` (resume each branch
//! from the nearest captured [`SimSnapshot`]) against `replay`
//! (re-simulate every path from cycle zero). The scale cells differ
//! from the 1–5-task rows in two deliberate ways: a lighter total
//! utilization (the F14 shape is unschedulable on its first run past
//! five tasks, leaving nothing to search) and a 6× longer probe
//! horizon under the deep-first branch order — the regime where the
//! search frontier sits far into the horizon and the strategies
//! actually diverge in cost, since a forked branch resumes at its
//! divergence while a replayed one re-simulates the whole prefix. The
//! deterministic columns — counters, verdict, the fork-equals-replay
//! byte-identity gate, and the largest snapshot footprint on the
//! default path — are byte-pinned; the wall-clock states/second rates
//! and the resulting speedup go to `BENCH_run_all.json` via
//! [`ExploreComparison`].

use std::sync::OnceLock;
use std::time::Instant;

use rtmdm_check::{explore, ExploreLimits, ExploreOrder, ExploreOutcome, ExploreStrategy};
use rtmdm_core::report;
use rtmdm_mcusim::{FaultPlan, PlatformConfig};
use rtmdm_sched::gen::{generate, TasksetParams};
use rtmdm_sched::script::{Choice, ChoicePoint, SimOracle, StateHash};
use rtmdm_sched::sim::{simulate_with_oracle_forked, Engine, Policy, SimConfig, SimSnapshot};
use rtmdm_sched::TaskSet;

use crate::telemetry::ExploreComparison;

/// State budget per cell; exceeding it is the `inconclusive` verdict.
const MAX_STATES: usize = 2_000;

/// Lower endpoint of the per-job execution-time interval (ppm of WCET).
const EXEC_SCALE_MIN_PPM: u64 = 600_000;

/// Total compute utilization of the 1–5-task F14 cells (ppm).
const F14_UTIL_PPM: u64 = 400_000;

/// Total compute utilization of the 6–8-task scale cells (ppm). The
/// F14 shape is unschedulable past five tasks — the default path hits
/// `RTM050` on the first run, leaving nothing to explore — so the
/// scale rows dial the load back until the search is depth-limited by
/// the state budget instead.
const SCALE_UTIL_PPM: u64 = 250_000;

/// Probe horizon of the 1–5-task F14 cells, in multiples of the
/// largest period.
const F14_HORIZON_PERIODS: u64 = 2;

/// Probe horizon of the scale cells. Longer on purpose: with the
/// deep-first order the state budget pins the frontier near the end of
/// the horizon, so the prefix a replayed branch re-simulates (and a
/// forked branch skips) grows with the horizon while the forked
/// suffix stays frontier-sized.
const SCALE_HORIZON_PERIODS: u64 = 12;

/// One F14 cell: the synthetic task set and its simulation config.
fn cell(
    platform: &PlatformConfig,
    n: usize,
    util_ppm: u64,
    horizon_periods: u64,
) -> (TaskSet, SimConfig) {
    let mut params = TasksetParams::baseline(n, util_ppm).with_grid_periods();
    params.segments_range = (2, 4);
    let ts = generate(&params, platform, 1);
    // A bounded probe horizon, not hyperperiod coverage: the row
    // measures how the search scales, and two of the largest
    // periods already hold several releases of every task.
    let horizon = ts.tasks().iter().map(|t| t.period).max().unwrap() * horizon_periods;
    let config = SimConfig {
        horizon,
        policy: Policy::FixedPriority,
        exec_scale_min_ppm: EXEC_SCALE_MIN_PPM,
        seed: 0,
        work_conserving: false,
        fault: FaultPlan::NONE,
        engine: Engine::Des,
        attribution: true,
        staging_window: 2,
    };
    (ts, config)
}

/// Renders an outcome into the table verdict column.
fn verdict(out: &ExploreOutcome) -> String {
    if out.proven_safe() {
        "safe".to_owned()
    } else if let Some(f) = out.findings.first() {
        if out.stats.complete || out.witness.is_some() {
            f.rule.id().to_owned()
        } else {
            "inconclusive".to_owned()
        }
    } else {
        "inconclusive".to_owned()
    }
}

/// F14 — explorer search counters as the task count grows.
pub fn f14_explore() -> String {
    let platform = super::eval_platform();
    let mut rows = Vec::new();
    for n in 1..=5usize {
        let (ts, config) = cell(&platform, n, F14_UTIL_PPM, F14_HORIZON_PERIODS);
        let limits = ExploreLimits {
            max_states: MAX_STATES,
            jitter_max_cycles: 0,
            ..ExploreLimits::default()
        };
        let out = explore(&ts, &platform, &config, &limits);
        rows.push(vec![
            n.to_string(),
            out.stats.states.to_string(),
            out.stats.runs.to_string(),
            out.stats.transitions.to_string(),
            verdict(&out),
        ]);
    }
    report::table(
        &["tasks", "states", "runs", "transitions", "verdict"],
        &rows,
    )
}

/// The deterministic scale table plus the wall-clock comparison, built
/// once and shared by [`f14_explore_scale`] and [`explore_comparison`].
struct ExploreProbe {
    table: String,
    comparison: ExploreComparison,
}

/// One comparable blob per outcome: findings, witness JSON, counters.
/// Byte-equality of these blobs is the table's `identical` gate.
fn fingerprint(out: &ExploreOutcome) -> String {
    let findings: Vec<String> = out
        .findings
        .iter()
        .map(|f| format!("{:?}|{}|{:?}", f.rule, f.message, f.task))
        .collect();
    let witness = out
        .witness
        .as_ref()
        .map(|w| serde_json::to_string(w).expect("witness serializes"));
    format!("{findings:?}\n{witness:?}\n{:?}", out.stats)
}

/// Always answers the deterministic default — the explorer's first
/// candidate — so a single capturing run walks the default path.
struct DefaultOracle;

impl SimOracle for DefaultOracle {
    fn choose(&mut self, point: ChoicePoint, _state: StateHash) -> Choice {
        Choice::default_for(&point)
    }
}

/// Largest [`SimSnapshot::size_hint`] captured on the workload's
/// default path — the snapshot footprint column of the scale table.
fn max_snapshot_bytes(ts: &TaskSet, platform: &PlatformConfig, config: &SimConfig) -> usize {
    let mut caps: Vec<SimSnapshot> = Vec::new();
    let mut oracle = DefaultOracle;
    let _ = simulate_with_oracle_forked(ts, platform, config, &mut oracle, None, Some(&mut caps));
    caps.iter().map(SimSnapshot::size_hint).max().unwrap_or(0)
}

fn run_probe() -> ExploreProbe {
    let platform = super::eval_platform();
    let mut rows = Vec::new();
    let mut identical = true;
    let mut timed = None;
    for n in 6..=8usize {
        let (ts, config) = cell(&platform, n, SCALE_UTIL_PPM, SCALE_HORIZON_PERIODS);
        let limits = |strategy| ExploreLimits {
            max_states: MAX_STATES,
            jitter_max_cycles: 0,
            strategy,
            threads: 1,
            order: ExploreOrder::DeepFirst,
        };
        let started = Instant::now();
        let fork = explore(&ts, &platform, &config, &limits(ExploreStrategy::Fork));
        let fork_secs = started.elapsed().as_secs_f64();
        let started = Instant::now();
        let replay = explore(&ts, &platform, &config, &limits(ExploreStrategy::Replay));
        let replay_secs = started.elapsed().as_secs_f64();
        let same = fingerprint(&fork) == fingerprint(&replay);
        identical &= same;
        rows.push(vec![
            n.to_string(),
            fork.stats.states.to_string(),
            fork.stats.runs.to_string(),
            fork.stats.transitions.to_string(),
            verdict(&fork),
            if same { "yes" } else { "no" }.to_owned(),
            max_snapshot_bytes(&ts, &platform, &config).to_string(),
        ]);
        // The comparison reports the deepest cell — the one the ≥6-task
        // speedup acceptance gate reads.
        timed = Some((
            n,
            fork.stats.states,
            fork.stats.transitions,
            fork_secs,
            replay_secs,
        ));
    }
    let (tasks, states, transitions, fork_secs, replay_secs) = timed.expect("scale rows");
    let rate = |count: u64, secs: f64| {
        if secs > 0.0 {
            count as f64 / secs
        } else {
            0.0
        }
    };
    let comparison = ExploreComparison {
        tasks: tasks as u64,
        states: states as u64,
        transitions,
        fork_states_per_second: rate(states as u64, fork_secs),
        fork_transitions_per_second: rate(transitions, fork_secs),
        replay_states_per_second: rate(states as u64, replay_secs),
        replay_transitions_per_second: rate(transitions, replay_secs),
        speedup: if fork_secs > 0.0 {
            replay_secs / fork_secs
        } else {
            0.0
        },
        identical,
    };
    ExploreProbe {
        table: report::table(
            &[
                "tasks",
                "states",
                "runs",
                "transitions",
                "verdict",
                "identical",
                "snapshot_bytes",
            ],
            &rows,
        ),
        comparison,
    }
}

fn probe() -> &'static ExploreProbe {
    static PROBE: OnceLock<ExploreProbe> = OnceLock::new();
    PROBE.get_or_init(run_probe)
}

/// F14 scale companion — fork versus replay at 6–8 tasks.
pub fn f14_explore_scale() -> String {
    probe().table.clone()
}

/// The wall-clock fork-versus-replay record for `BENCH_run_all.json`.
pub fn explore_comparison() -> ExploreComparison {
    probe().comparison.clone()
}
