//! Figure F14 — explorer scale: schedule-space size versus task count.
//!
//! One synthetic task set per row (fixed generator seed, grid periods),
//! explored exhaustively with a two-endpoint execution-time dimension
//! (WCET and 60 % of WCET per job). The columns are the search
//! counters: distinct canonical `(state, choice-point)` pairs, full
//! simulation runs, transitions taken, and the verdict — `safe` when
//! the lattice was covered without a violation, a rule ID when the
//! explorer reached one, `inconclusive` when the state budget ran out.
//!
//! Everything in the table is deterministic (the explorer's DFS order
//! is fixed), so the table is byte-pinned like every other
//! `results/*.txt`. Wall time is nondeterministic by nature and lands
//! in `BENCH_run_all.json` via the harness telemetry, per the same
//! discipline as the F12 engine throughput probe.

use rtmdm_check::{explore, ExploreLimits};
use rtmdm_core::report;
use rtmdm_mcusim::FaultPlan;
use rtmdm_sched::gen::{generate, TasksetParams};
use rtmdm_sched::sim::{Engine, Policy, SimConfig};

/// State budget per cell; exceeding it is the `inconclusive` verdict.
const MAX_STATES: usize = 2_000;

/// Lower endpoint of the per-job execution-time interval (ppm of WCET).
const EXEC_SCALE_MIN_PPM: u64 = 600_000;

/// F14 — explorer search counters as the task count grows.
pub fn f14_explore() -> String {
    let platform = super::eval_platform();
    let mut rows = Vec::new();
    for n in 1..=5usize {
        let mut params = TasksetParams::baseline(n, 400_000).with_grid_periods();
        params.segments_range = (2, 4);
        let ts = generate(&params, &platform, 1);
        // A bounded probe horizon, not hyperperiod coverage: the row
        // measures how the search scales, and two of the largest
        // periods already hold several releases of every task.
        let horizon = ts.tasks().iter().map(|t| t.period).max().unwrap() * 2;
        let config = SimConfig {
            horizon,
            policy: Policy::FixedPriority,
            exec_scale_min_ppm: EXEC_SCALE_MIN_PPM,
            seed: 0,
            work_conserving: false,
            fault: FaultPlan::NONE,
            engine: Engine::Des,
            attribution: true,
            staging_window: 2,
        };
        let limits = ExploreLimits {
            max_states: MAX_STATES,
            jitter_max_cycles: 0,
        };
        let out = explore(&ts, &platform, &config, &limits);
        let verdict = if out.proven_safe() {
            "safe".to_owned()
        } else if let Some(f) = out.findings.first() {
            if out.stats.complete || out.witness.is_some() {
                f.rule.id().to_owned()
            } else {
                "inconclusive".to_owned()
            }
        } else {
            "inconclusive".to_owned()
        };
        rows.push(vec![
            n.to_string(),
            out.stats.states.to_string(),
            out.stats.runs.to_string(),
            out.stats.transitions.to_string(),
            verdict,
        ]);
    }
    report::table(
        &["tasks", "states", "runs", "transitions", "verdict"],
        &rows,
    )
}
