//! Figure F8 — ablation: switch RT-MDM's mechanisms off one at a time.
//!
//! Each ablation variant is an independent cell for
//! [`par_map_seeded`]; rows come back in input order.

use rtmdm_core::{report, FrameworkOptions, RtMdm, Strategy, TaskSpec};
use rtmdm_dnn::zoo;

use crate::par::par_map_seeded;

use super::{eval_platform, ms};

/// F8 — contribution of each mechanism on the sensor-node mix
/// (control @20 ms + kws @100 ms + vww @500 ms, stm32f746-qspi):
///
/// 1. full RT-MDM;
/// 2. − prefetch overlap (fetch-then-compute staging);
/// 3. − segment-level preemption (whole-DNN blocks);
/// 4. − DMA-aware analysis (memory-oblivious admission — the runtime is
///    unchanged, so watch the admitted-vs-missed columns);
/// 5. − gating (work-conserving dispatch with its matching analysis).
pub fn f8_ablation() -> String {
    let variants: Vec<(&str, FrameworkOptions)> = vec![
        ("full rt-mdm", FrameworkOptions::default()),
        (
            "- prefetch overlap",
            FrameworkOptions {
                force_strategy: Some(Strategy::FetchThenCompute),
                ..FrameworkOptions::default()
            },
        ),
        (
            "- segment preemption",
            FrameworkOptions {
                force_strategy: Some(Strategy::WholeDnn),
                ..FrameworkOptions::default()
            },
        ),
        (
            "- dma-aware analysis",
            FrameworkOptions {
                dma_aware_analysis: false,
                ..FrameworkOptions::default()
            },
        ),
        (
            "- gating (work-conserving)",
            FrameworkOptions {
                work_conserving: true,
                ..FrameworkOptions::default()
            },
        ),
    ];

    let rows = par_map_seeded(variants, |(label, options)| {
        let platform = eval_platform();
        let cpu = platform.cpu;
        let mut fw = RtMdm::with_options(platform.clone(), options).expect("platform");
        fw.add_task(TaskSpec::new("control", zoo::micro_mlp(), 20_000, 20_000))
            .expect("control");
        fw.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))
            .expect("kws");
        fw.add_task(TaskSpec::new(
            "vww",
            zoo::mobilenet_v1_025(),
            500_000,
            500_000,
        ))
        .expect("vww");
        let admitted = match fw.admit() {
            Ok(a) if a.schedulable() => "yes".to_owned(),
            Ok(_) => "NO (timing)".to_owned(),
            Err(_) => "NO (sram)".to_owned(),
        };
        let (misses, control, vww) = match fw.simulate(5_000_000) {
            Ok(run) => (
                run.deadline_misses().to_string(),
                run.max_response_of("control")
                    .map(|c| ms(c, cpu))
                    .unwrap_or_else(|| "n/a".into()),
                run.max_response_of("vww")
                    .map(|c| ms(c, cpu))
                    .unwrap_or_else(|| "n/a".into()),
            ),
            Err(_) => ("n/a".into(), "n/a".into(), "n/a".into()),
        };
        vec![label.to_owned(), admitted, misses, control, vww]
    });
    report::table(
        &[
            "variant",
            "admitted",
            "misses (5 s)",
            "control max ms",
            "vww max ms",
        ],
        &rows,
    )
}
