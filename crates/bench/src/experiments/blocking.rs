//! Figure F6 — non-preemptive blocking vs segmentation granularity.
//!
//! Each segmentation configuration is an independent cell for
//! [`par_map_seeded`]; rows come back in input order.

use rtmdm_core::{report, FrameworkOptions, RtMdm, Strategy, TaskSpec};
use rtmdm_dnn::zoo;

use crate::par::par_map_seeded;

use super::{eval_platform, ms};

/// F6 — how the segment compute cap bounds the blocking a heavyweight
/// DNN imposes on a 25 ms control task. Expected shape: the whole-DNN
/// baseline blocks for the entire inference (≈80 ms — hopeless); finer
/// caps shrink the analytical bound until, without tiling, it floors at
/// resnet8's largest indivisible layer (≈15 ms of compute); intra-layer
/// tiling then tracks the cap all the way down.
pub fn f6_blocking() -> String {
    // (label, forced strategy, cap µs, intra-layer tiling)
    let configs: Vec<(&str, Option<Strategy>, Option<u64>, bool)> = vec![
        ("whole-dnn", Some(Strategy::WholeDnn), None, false),
        ("cap 20 ms", None, Some(20_000), false),
        ("cap 10 ms", None, Some(10_000), false),
        ("cap 5 ms", None, Some(5_000), false),
        ("cap 10 ms + tiling", None, Some(10_000), true),
        ("cap 5 ms + tiling", None, Some(5_000), true),
        ("cap 2.5 ms + tiling", None, Some(2_500), true),
        ("cap 1 ms + tiling", None, Some(1_000), true),
    ];
    let rows = par_map_seeded(configs, |(label, strategy, cap_us, tiling)| {
        let platform = eval_platform();
        let cpu = platform.cpu;
        let options = FrameworkOptions {
            force_strategy: strategy,
            segment_compute_cap_us: cap_us,
            tile_oversized_layers: tiling,
            ..FrameworkOptions::default()
        };
        let mut fw = RtMdm::with_options(platform.clone(), options).expect("platform");
        fw.add_task(TaskSpec::new("control", zoo::micro_mlp(), 25_000, 25_000))
            .expect("control");
        fw.add_task(TaskSpec::new("ic", zoo::resnet8(), 400_000, 400_000))
            .expect("ic");
        let (admitted, bound, segments, max_seg) = match fw.admit() {
            Ok(a) => {
                let idx = a
                    .names
                    .iter()
                    .position(|n| n == "control")
                    .expect("present");
                // Plans are in insertion order; "ic" was added second.
                // Under the whole-DNN strategy the plan's segments are
                // merged into one block at task-build time.
                let plan = &a.plans[1];
                let whole = strategy == Some(Strategy::WholeDnn);
                let (nseg, max_block) = if whole {
                    (1, plan.total_compute())
                } else {
                    (plan.len(), plan.max_segment_compute())
                };
                (
                    if a.schedulable() { "yes" } else { "NO" },
                    a.analysis
                        .response_of(idx)
                        .map(|b| ms(b, cpu))
                        .unwrap_or_else(|| "diverged".to_owned()),
                    nseg.to_string(),
                    ms(max_block, cpu),
                )
            }
            Err(_) => (
                "NO (sram)",
                "n/a".to_owned(),
                "-".to_owned(),
                "-".to_owned(),
            ),
        };
        let observed = fw
            .simulate(5_000_000)
            .ok()
            .and_then(|r| r.max_response_of("control").map(|c| ms(c, cpu)))
            .unwrap_or_else(|| "n/a".to_owned());
        vec![
            label.to_owned(),
            segments,
            max_seg,
            bound,
            observed,
            admitted.to_owned(),
        ]
    });
    report::table(
        &[
            "segmentation",
            "ic segments",
            "max ic segment ms",
            "control wcrt bound ms",
            "control observed max ms",
            "admitted",
        ],
        &rows,
    )
}
