//! Figure F11 — robustness under injected DMA faults.
//!
//! Panel 1 sweeps the fault rate over random task sets and reports the
//! fault/retry volume, the job-level miss ratio, and *goodput* (the
//! fraction of released jobs that complete by their deadline). The
//! injector couples runs through common random numbers — a run at a
//! higher rate faults a superset of the transfers a lower rate faults —
//! so aggregate goodput decays monotonically as the rate rises.
//!
//! Panel 2 holds the fault rate at the sweep's harshest point and
//! compares the three deadline-miss policies: `continue` keeps late
//! jobs running, `abort` reclaims their remaining demand, `skip-next`
//! sheds the release after a miss to relieve overload.

use rtmdm_core::report;
use rtmdm_mcusim::FaultPlan;
use rtmdm_sched::gen::{generate, TasksetParams};
use rtmdm_sched::sim::{simulate, Policy, SimConfig, SimResult};
use rtmdm_sched::{MissPolicy, TaskSet};

use crate::par::par_map_seeded;

use super::eval_platform;

/// Fault rates of the panel-1 sweep, in faults per million transfers.
const RATES: [u64; 6] = [0, 1_000, 10_000, 50_000, 200_000, 500_000];

/// Task sets per sweep cell.
const SETS: u32 = 60;

/// Per-attempt bus-latency jitter bound used throughout F11.
const JITTER: u64 = 50;

fn params() -> TasksetParams {
    // Fetch-heavy sets so transfer faults actually bite: the staging
    // pipeline carries 40% of each task's demand.
    let mut p = TasksetParams::baseline(4, 35 * 10_000);
    p.segments_range = (3, 6);
    p.fetch_compute_ratio_ppm = 400_000;
    p
}

/// One simulated cell: a generated set under `policy` at `rate_ppm`.
fn run_cell(seed: u32, rate_ppm: u64, policy: MissPolicy) -> SimResult {
    let p = eval_platform();
    let ts = generate(&params(), &p, u64::from(seed));
    let ts = TaskSet::from_tasks(
        ts.tasks()
            .iter()
            .map(|t| t.clone().with_miss_policy(policy))
            .collect(),
    );
    let horizon = ts.tasks().iter().map(|t| t.period).max().unwrap() * 4;
    let mut config = SimConfig::new(horizon, Policy::FixedPriority);
    config.fault = FaultPlan {
        seed: u64::from(seed),
        dma_fault_rate_ppm: rate_ppm,
        max_retries: rtmdm_mcusim::DEFAULT_MAX_RETRIES,
        jitter_max_cycles: JITTER,
    };
    simulate(&ts, &p, &config)
}

/// Aggregate counters folded over one sweep cell's task sets.
#[derive(Default)]
struct Tally {
    releases: u64,
    misses: u64,
    shed: u64,
    aborted: u64,
    faults: u64,
    retries: u64,
    refetch_cycles: u64,
}

impl Tally {
    fn add(&mut self, run: &SimResult) {
        self.releases += run.stats.iter().map(|s| s.releases).sum::<u64>();
        self.misses += run.total_misses();
        self.shed += run.metrics.shed_jobs;
        self.aborted += run.metrics.aborted_jobs;
        self.faults += run.metrics.injected_faults;
        self.retries += run.metrics.fetch_retries;
        self.refetch_cycles += run.metrics.refetch_cycles.get();
    }

    /// Fraction of released jobs that completed by their deadline.
    /// Missed jobs are late or dropped; shed releases never ran (and
    /// never reached a deadline check), so both count against goodput.
    fn goodput_pct(&self) -> f64 {
        let on_time = self.releases - self.misses - self.shed;
        100.0 * on_time as f64 / self.releases.max(1) as f64
    }

    fn miss_pct(&self) -> f64 {
        100.0 * self.misses as f64 / self.releases.max(1) as f64
    }
}

impl Extend<SimResult> for Tally {
    fn extend<T: IntoIterator<Item = SimResult>>(&mut self, iter: T) {
        for run in iter {
            self.add(&run);
        }
    }
}

fn fold<I: IntoIterator<Item = SimResult>>(runs: I) -> Tally {
    let mut t = Tally::default();
    t.extend(runs);
    t
}

/// F11 — miss ratio and goodput versus fault rate, plus the
/// deadline-miss-policy comparison at the harshest rate.
pub fn f11_robustness() -> String {
    let cells: Vec<(u64, u32)> = RATES
        .iter()
        .flat_map(|&r| (0..SETS).map(move |s| (r, s)))
        .collect();
    let runs = par_map_seeded(cells, |(rate, seed)| {
        run_cell(seed, rate, MissPolicy::Continue)
    });
    let mut rows = Vec::new();
    let mut it = runs.into_iter();
    for &rate in &RATES {
        let t = fold(it.by_ref().take(SETS as usize));
        rows.push(vec![
            format!("{rate}"),
            t.faults.to_string(),
            t.retries.to_string(),
            t.refetch_cycles.to_string(),
            format!("{:.2}%", t.miss_pct()),
            format!("{:.2}%", t.goodput_pct()),
        ]);
    }
    let main = report::table(
        &[
            "fault rate (ppm)",
            "faults",
            "retries",
            "refetch cycles",
            "job miss ratio",
            "goodput",
        ],
        &rows,
    );

    // Panel 2: what each miss policy salvages at the harshest rate.
    let harsh = *RATES.last().expect("rates");
    let policies = [
        ("continue", MissPolicy::Continue),
        ("abort", MissPolicy::Abort),
        ("skip-next", MissPolicy::SkipNextRelease),
    ];
    let cells2: Vec<(usize, u32)> = (0..policies.len())
        .flat_map(|p| (0..SETS).map(move |s| (p, s)))
        .collect();
    let runs2 = par_map_seeded(cells2, |(p, seed)| run_cell(seed, harsh, policies[p].1));
    let mut rows2 = Vec::new();
    let mut it2 = runs2.into_iter();
    for (name, _) in policies {
        let t = fold(it2.by_ref().take(SETS as usize));
        rows2.push(vec![
            name.to_owned(),
            format!("{:.2}%", t.miss_pct()),
            t.shed.to_string(),
            t.aborted.to_string(),
            format!("{:.2}%", t.goodput_pct()),
        ]);
    }
    let second = report::table(
        &[
            "miss policy",
            "job miss ratio",
            "shed",
            "aborted",
            "goodput",
        ],
        &rows2,
    );
    format!("{main}\nmiss-policy comparison at {harsh} ppm:\n{second}")
}
