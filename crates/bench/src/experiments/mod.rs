//! Experiment implementations, one per table/figure of `DESIGN.md` §4.

mod ablation;
mod blame;
mod blocking;
mod energy;
mod engine;
mod explore;
mod fleet;
mod latency;
mod platforms;
mod robustness;
mod sched_ratio;
mod tables;

pub use ablation::f8_ablation;
pub use blame::f13_blame;
pub use blocking::f6_blocking;
pub use energy::f9_energy;
pub use engine::{engine_comparison, f12_engine};
pub use explore::{explore_comparison, f14_explore, f14_explore_scale};
pub use fleet::{f15_fleet, fleet_comparison};
pub use latency::{f1_latency, f4_sram_budget, f5_bandwidth};
pub use platforms::f10_platforms;
pub use robustness::f11_robustness;
pub use sched_ratio::{f2_sched_ratio, f3_miss_ratio, f7_opa};
pub use tables::{t1_models, t2_platforms, t3_wcrt};

/// The default evaluation platform of the whole study.
pub fn eval_platform() -> rtmdm_mcusim::PlatformConfig {
    rtmdm_mcusim::PlatformConfig::stm32f746_qspi()
}

/// Formats cycles as milliseconds with three decimals on a clock.
pub(crate) fn ms(cycles: rtmdm_mcusim::Cycles, cpu: rtmdm_mcusim::Frequency) -> String {
    let us = cpu.micros_from_cycles(cycles);
    format!("{}.{:03}", us / 1000, us % 1000)
}

/// Formats a ratio of two counts as a percentage.
pub(crate) fn pct(num: u32, den: u32) -> String {
    if den == 0 {
        return "n/a".to_owned();
    }
    format!("{:.1}", 100.0 * f64::from(num) / f64::from(den))
}
