//! Figure F12 — discrete-event engine versus the legacy advance loop.
//!
//! The table is the *equivalence gate*: a grid of directed scenarios —
//! platforms, dispatchers, policies, execution jitter, injected DMA
//! faults, all three deadline-miss policies — each simulated under both
//! time-advancement engines, with the trace, per-task stats, and global
//! metrics compared for exact equality. Every row must say `yes`; the
//! table is deterministic and lands in `results/f12_engine.txt`.
//!
//! Throughput is measured separately by [`engine_comparison`]: wall
//! times are nondeterministic, so they go to `BENCH_run_all.json` (via
//! the telemetry layer), never into the byte-pinned results table.

use std::time::Instant;

use rtmdm_core::report;
use rtmdm_mcusim::{Cycles, FaultPlan, PlatformConfig, DEFAULT_MAX_RETRIES};
use rtmdm_sched::gen::{generate, TasksetParams};
use rtmdm_sched::sim::{simulate, Engine, Policy, SimConfig, SimResult};
use rtmdm_sched::{MissPolicy, Segment, SporadicTask, StagingMode, TaskSet};

use crate::telemetry::EngineComparison;

/// One directed scenario of the equivalence grid.
struct Scenario {
    label: &'static str,
    platform: PlatformConfig,
    policy: Policy,
    work_conserving: bool,
    exec_scale_min_ppm: u64,
    fault_rate_ppm: u64,
    miss_policy: MissPolicy,
    util_ppm: u64,
    seed: u64,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            label: "f746/fp/gated/wcet",
            platform: PlatformConfig::stm32f746_qspi(),
            policy: Policy::FixedPriority,
            work_conserving: false,
            exec_scale_min_ppm: 1_000_000,
            fault_rate_ppm: 0,
            miss_policy: MissPolicy::Continue,
            util_ppm: 350_000,
            seed: 7,
        },
        Scenario {
            label: "f746/fp/wc/jitter",
            platform: PlatformConfig::stm32f746_qspi(),
            policy: Policy::FixedPriority,
            work_conserving: true,
            exec_scale_min_ppm: 400_000,
            fault_rate_ppm: 0,
            miss_policy: MissPolicy::Continue,
            util_ppm: 450_000,
            seed: 11,
        },
        Scenario {
            label: "h743/edf/gated/wcet",
            platform: PlatformConfig::stm32h743_ospi(),
            policy: Policy::Edf,
            work_conserving: false,
            exec_scale_min_ppm: 1_000_000,
            fault_rate_ppm: 0,
            miss_policy: MissPolicy::Continue,
            util_ppm: 500_000,
            seed: 3,
        },
        Scenario {
            label: "m4/fp/gated/faults",
            platform: PlatformConfig::cortex_m4_lowend(),
            policy: Policy::FixedPriority,
            work_conserving: false,
            exec_scale_min_ppm: 1_000_000,
            fault_rate_ppm: 50_000,
            miss_policy: MissPolicy::Continue,
            util_ppm: 300_000,
            seed: 19,
        },
        Scenario {
            label: "f746/fp/overload/continue",
            platform: PlatformConfig::stm32f746_qspi(),
            policy: Policy::FixedPriority,
            work_conserving: false,
            exec_scale_min_ppm: 1_000_000,
            fault_rate_ppm: 200_000,
            miss_policy: MissPolicy::Continue,
            util_ppm: 800_000,
            seed: 23,
        },
        Scenario {
            label: "f746/fp/overload/abort",
            platform: PlatformConfig::stm32f746_qspi(),
            policy: Policy::FixedPriority,
            work_conserving: false,
            exec_scale_min_ppm: 1_000_000,
            fault_rate_ppm: 200_000,
            miss_policy: MissPolicy::Abort,
            util_ppm: 800_000,
            seed: 23,
        },
        Scenario {
            label: "f746/fp/overload/skip-next",
            platform: PlatformConfig::stm32f746_qspi(),
            policy: Policy::FixedPriority,
            work_conserving: false,
            exec_scale_min_ppm: 1_000_000,
            fault_rate_ppm: 200_000,
            miss_policy: MissPolicy::SkipNextRelease,
            util_ppm: 800_000,
            seed: 23,
        },
        Scenario {
            label: "h743/edf/wc/jitter+faults",
            platform: PlatformConfig::stm32h743_ospi(),
            policy: Policy::Edf,
            work_conserving: true,
            exec_scale_min_ppm: 300_000,
            fault_rate_ppm: 100_000,
            miss_policy: MissPolicy::SkipNextRelease,
            util_ppm: 600_000,
            seed: 29,
        },
    ]
}

fn run(s: &Scenario, engine: Engine) -> SimResult {
    let mut params = TasksetParams::baseline(4, s.util_ppm);
    params.segments_range = (2, 5);
    params.fetch_compute_ratio_ppm = 300_000;
    let ts = generate(&params, &s.platform, s.seed);
    let ts = TaskSet::from_tasks(
        ts.tasks()
            .iter()
            .map(|t| t.clone().with_miss_policy(s.miss_policy))
            .collect(),
    );
    let horizon = ts.tasks().iter().map(|t| t.period).max().unwrap() * 4;
    let config = SimConfig {
        horizon,
        policy: s.policy,
        exec_scale_min_ppm: s.exec_scale_min_ppm,
        seed: s.seed,
        work_conserving: s.work_conserving,
        fault: FaultPlan {
            seed: s.seed,
            dma_fault_rate_ppm: s.fault_rate_ppm,
            max_retries: DEFAULT_MAX_RETRIES,
            jitter_max_cycles: if s.fault_rate_ppm > 0 { 50 } else { 0 },
        },
        engine,
        attribution: false,
        staging_window: 2,
    };
    simulate(&ts, &s.platform, &config)
}

/// Whether two runs are observably identical: same trace, same
/// per-task stats, same aggregate metrics.
fn identical(a: &SimResult, b: &SimResult) -> bool {
    a.trace.events() == b.trace.events() && a.stats == b.stats && a.metrics == b.metrics
}

/// F12 — the engine-equivalence gate across the directed scenario grid.
pub fn f12_engine() -> String {
    let mut rows = Vec::new();
    for s in scenarios() {
        let legacy = run(&s, Engine::Legacy);
        let des = run(&s, Engine::Des);
        let releases: u64 = des.stats.iter().map(|t| t.releases).sum();
        rows.push(vec![
            s.label.to_owned(),
            des.trace.events().len().to_string(),
            releases.to_string(),
            des.total_misses().to_string(),
            des.metrics.injected_faults.to_string(),
            if identical(&legacy, &des) {
                "yes"
            } else {
                "NO"
            }
            .to_owned(),
        ]);
    }
    report::table(
        &[
            "scenario",
            "trace events",
            "releases",
            "misses",
            "faults",
            "identical",
        ],
        &rows,
    )
}

/// Simulated horizon of the throughput probe: two seconds at 200 MHz —
/// long enough that per-run wall time dwarfs timer granularity.
const PROBE_HORIZON: u64 = 400_000_000;

/// Probe runs per engine; the fastest run counts, as in any
/// throughput benchmark, to shed scheduler noise.
const PROBE_RUNS: u32 = 5;

/// The throughput-probe task set: the workload class RT-MDM targets.
///
/// Two overlapped DNN pipelines at ~85% combined CPU utilization keep
/// CPU and DMA contending through long non-preemptive segments, while
/// two high-rate resident control loops pepper those stretches with
/// timer traffic. A control release landing mid-segment cannot
/// dispatch (the segment holds the CPU) and its sub-period deadline
/// check lands at its own instant and mutates nothing — so roughly a
/// third of all instants change no resource state. The legacy loop
/// settles contention credit and recomputes both finish estimates at
/// every one of those cuts; the event engine pops a timer event and
/// moves on. This is the multi-DNN-plus-control mix the paper runs on
/// the MCU, and the regime the engine rewrite is for.
///
/// The deadlines are deliberately shorter than the periods (checks at
/// distinct instants) and unmeetable behind a 90 k-cycle segment; the
/// probe measures simulator throughput, not schedulability.
fn probe_taskset() -> TaskSet {
    let cy = Cycles::new;
    let seg = |compute: u64, bytes: u64| Segment::new(cy(compute), bytes);
    let task = |name: &str, period: u64, deadline: u64, segs: Vec<Segment>, mode: StagingMode| {
        SporadicTask::new(name, cy(period), cy(deadline), segs, mode).expect("valid probe task")
    };
    TaskSet::from_tasks(vec![
        task(
            "ctrl-a",
            2_000,
            1_200,
            vec![seg(60, 0)],
            StagingMode::Resident,
        ),
        task(
            "ctrl-b",
            3_100,
            1_900,
            vec![seg(90, 0)],
            StagingMode::Resident,
        ),
        task(
            "dnn-a",
            2_000_000,
            2_000_000,
            (0..10).map(|_| seg(90_000, 16_000)).collect(),
            StagingMode::Overlapped,
        ),
        task(
            "dnn-b",
            3_500_000,
            3_500_000,
            (0..8).map(|_| seg(150_000, 26_000)).collect(),
            StagingMode::Overlapped,
        ),
    ])
}

/// Measures DES-versus-legacy simulator throughput on a fixed two-
/// simulated-second scenario and cross-checks equivalence on it.
///
/// Wall-clock based and therefore nondeterministic — the numbers go to
/// `BENCH_run_all.json`, never into `results/*.txt`.
pub fn engine_comparison() -> EngineComparison {
    let p = PlatformConfig::stm32f746_qspi();
    let ts = probe_taskset();
    let config = |engine: Engine| SimConfig {
        horizon: rtmdm_mcusim::Cycles::new(PROBE_HORIZON),
        policy: Policy::FixedPriority,
        exec_scale_min_ppm: 1_000_000,
        seed: 3,
        work_conserving: false,
        fault: FaultPlan::NONE,
        engine,
        attribution: false,
        staging_window: 2,
    };
    let timed_run = |engine: Engine| -> (SimResult, f64) {
        let start = Instant::now();
        let run = simulate(&ts, &p, &config(engine));
        (run, start.elapsed().as_secs_f64())
    };
    // Interleave the engines so slow drift (thermal, scheduler) hits
    // both equally; the fastest run per engine counts, as in any
    // throughput benchmark, to shed scheduler noise.
    let mut legacy_wall = f64::INFINITY;
    let mut des_wall = f64::INFINITY;
    let mut legacy = None;
    let mut des = None;
    for _ in 0..PROBE_RUNS {
        let (run, wall) = timed_run(Engine::Legacy);
        legacy_wall = legacy_wall.min(wall);
        legacy = Some(run);
        let (run, wall) = timed_run(Engine::Des);
        des_wall = des_wall.min(wall);
        des = Some(run);
    }
    let (legacy, des) = (
        legacy.expect("at least one probe run"),
        des.expect("at least one probe run"),
    );
    let rate = |wall: f64| {
        if wall > 1e-9 {
            PROBE_HORIZON as f64 / wall
        } else {
            0.0
        }
    };
    let legacy_rate = rate(legacy_wall);
    let des_rate = rate(des_wall);
    EngineComparison {
        sim_cycles: PROBE_HORIZON,
        des_cycles_per_second: des_rate,
        legacy_cycles_per_second: legacy_rate,
        speedup: if legacy_rate > 0.0 {
            des_rate / legacy_rate
        } else {
            0.0
        },
        equivalent: identical(&legacy, &des),
    }
}
