//! Tables T1 (models), T2 (platforms), and T3 (WCRT bound vs observed).
//!
//! T1 parallelizes per model and T3 per mix via [`par_map_seeded`]
//! (T2 is pure formatting); rows come back in input order.

use rtmdm_core::{report, RtMdm, TaskSpec};
use rtmdm_dnn::{zoo, CostModel};
use rtmdm_mcusim::PlatformConfig;
use rtmdm_xmem::segment_model;

use crate::par::par_map_seeded;

use super::{eval_platform, ms};

/// T1 — model characteristics: the workload side of the study.
pub fn t1_models() -> String {
    let rows: Vec<Vec<String>> = par_map_seeded(zoo::all(), |m| {
        let cost = CostModel::cmsis_nn_m7();
        let platform = eval_platform();
        let min_buffer = m.max_layer_weight_bytes().max(1).div_ceil(4096) * 4096;
        let seg = segment_model(&m, &cost, min_buffer).expect("min buffer fits by construction");
        let compute = cost.model_cost(&m).total_compute;
        vec![
            m.name().to_owned(),
            m.len().to_string(),
            (m.total_macs() / 1000).to_string(),
            (m.total_weight_bytes() / 1024).to_string(),
            (m.max_layer_weight_bytes() / 1024).to_string(),
            (m.max_activation_bytes() / 1024).to_string(),
            (min_buffer / 1024).to_string(),
            seg.len().to_string(),
            ms(compute, platform.cpu),
        ]
    });
    report::table(
        &[
            "model",
            "layers",
            "kMACs",
            "weights KiB",
            "max layer KiB",
            "max act KiB",
            "min buffer KiB",
            "segments @min",
            "compute ms @200MHz",
        ],
        &rows,
    )
}

/// T2 — platform presets used throughout the evaluation.
pub fn t2_platforms() -> String {
    let rows: Vec<Vec<String>> = PlatformConfig::presets()
        .iter()
        .map(|p| {
            let bw = p.ext_mem.bandwidth_bytes_per_second(p.cpu);
            let bw = if bw == u64::MAX {
                "∞".to_owned()
            } else {
                format!("{}", bw / 1_000_000)
            };
            vec![
                p.name.clone(),
                p.cpu.to_string(),
                (p.sram_bytes / 1024).to_string(),
                p.ext_mem.kind.to_string(),
                bw,
                p.ext_mem.setup_cycles.to_string(),
                format!(
                    "{}%/{}%",
                    p.contention.cpu_inflation_ppm / 10_000,
                    p.contention.dma_inflation_ppm / 10_000
                ),
                p.context_switch_cycles.to_string(),
            ]
        })
        .collect();
    report::table(
        &[
            "platform",
            "cpu",
            "sram KiB",
            "ext-mem",
            "MB/s",
            "dma setup",
            "contention cpu/dma",
            "ctx switch",
        ],
        &rows,
    )
}

/// T3 — analytical WCRT bound vs worst observed response, per task, on
/// three multi-DNN mixes. The bound must dominate; the ratio quantifies
/// the analysis's pessimism.
pub fn t3_wcrt() -> String {
    let mixes: Vec<(&str, PlatformConfig, Vec<TaskSpec>)> = vec![
        (
            "A: control+kws+ic @f746",
            PlatformConfig::stm32f746_qspi(),
            vec![
                TaskSpec::new("control", zoo::micro_mlp(), 20_000, 20_000),
                TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000),
                TaskSpec::new("ic", zoo::resnet8(), 400_000, 400_000),
            ],
        ),
        (
            "B: control+kws+vww @f746",
            PlatformConfig::stm32f746_qspi(),
            vec![
                TaskSpec::new("control", zoo::micro_mlp(), 20_000, 20_000),
                TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000),
                TaskSpec::new("vww", zoo::mobilenet_v1_025(), 500_000, 500_000),
            ],
        ),
        (
            "C: kws+anomaly+vww+ic @h743",
            PlatformConfig::stm32h743_ospi(),
            vec![
                TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000),
                TaskSpec::new("anomaly", zoo::autoencoder(), 200_000, 200_000),
                TaskSpec::new("vww", zoo::mobilenet_v1_025(), 400_000, 400_000),
                TaskSpec::new("ic", zoo::resnet8(), 400_000, 400_000),
            ],
        ),
    ];

    let per_mix: Vec<Vec<Vec<String>>> = par_map_seeded(mixes, |(label, platform, specs)| {
        let cpu = platform.cpu;
        let mut fw = RtMdm::new(platform).expect("platform");
        for s in specs {
            fw.add_task(s).expect("add");
        }
        let admission = fw.admit().expect("admit");
        let run = fw.simulate(10_000_000).expect("simulate 10 s");
        let mut rows = Vec::new();
        for (p, name) in admission.names.iter().enumerate() {
            let bound = admission.analysis.response_of(p);
            let observed = run.max_response_of(name).expect("ran");
            let (bound_s, ratio) = match bound {
                Some(b) => {
                    let r = if observed.get() > 0 {
                        format!("{:.2}", b.get() as f64 / observed.get() as f64)
                    } else {
                        "n/a".to_owned()
                    };
                    (ms(b, cpu), r)
                }
                None => ("diverged".to_owned(), "n/a".to_owned()),
            };
            rows.push(vec![
                label.to_owned(),
                name.clone(),
                bound_s,
                ms(observed, cpu),
                ratio,
                if bound.is_some_and(|b| b >= observed) {
                    "yes".to_owned()
                } else {
                    "VIOLATED".to_owned()
                },
            ]);
        }
        rows
    });
    let rows: Vec<Vec<String>> = per_mix.into_iter().flatten().collect();
    report::table(
        &[
            "mix",
            "task",
            "wcrt bound ms",
            "observed max ms",
            "bound/obs",
            "dominates",
        ],
        &rows,
    )
}
