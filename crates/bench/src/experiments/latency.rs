//! Figures F1 (strategy latency), F4 (SRAM-budget sweep), and F5
//! (bandwidth sweep).
//!
//! Each figure expands its per-row configurations into cells for
//! [`par_map_seeded`]; rows come back in input order, so the table is
//! byte-identical to the serial loop.

use rtmdm_core::{report, RtMdm, TaskSpec};
use rtmdm_dnn::{zoo, CostModel};
use rtmdm_mcusim::{Cycles, ExtMemConfig, ExtMemKind};
use rtmdm_xmem::{pipeline, segment_model, ExecutionStrategy};

use crate::par::par_map_seeded;

use super::{eval_platform, ms};

fn auto_buffer(model: &rtmdm_dnn::Model) -> u64 {
    model.max_layer_weight_bytes().max(1).div_ceil(4096) * 4096
}

/// F1 — single-DNN inference latency per execution strategy, per model.
/// Expected shape: `all-in-sram ≤ rt-mdm ≤ fetch-then-compute`, with the
/// rt-mdm gap to ideal small for compute-bound models (resnet8, vww) and
/// large for fetch-bound ones (autoencoder).
pub fn f1_latency() -> String {
    let rows = par_map_seeded(zoo::all(), |model| {
        let cost = CostModel::cmsis_nn_m7();
        let platform = eval_platform();
        let seg = segment_model(&model, &cost, auto_buffer(&model)).expect("auto buffer fits");
        let ideal = pipeline::isolated_latency(&seg, &platform, ExecutionStrategy::AllInSram);
        let rtmdm =
            pipeline::isolated_latency(&seg, &platform, ExecutionStrategy::OverlappedPrefetch);
        let naive =
            pipeline::isolated_latency(&seg, &platform, ExecutionStrategy::FetchThenCompute);
        let hidden = pipeline::overlap_efficiency_pct(&seg, &platform)
            .map(|e| format!("{e}%"))
            .unwrap_or_else(|| "n/a".to_owned());
        let speedup = format!("{:.2}x", naive.get() as f64 / rtmdm.get() as f64);
        vec![
            model.name().to_owned(),
            seg.len().to_string(),
            ms(ideal, platform.cpu),
            ms(rtmdm, platform.cpu),
            ms(naive, platform.cpu),
            hidden,
            speedup,
        ]
    });
    report::table(
        &[
            "model",
            "segments",
            "all-in-sram ms",
            "rt-mdm ms",
            "fetch-then-compute ms",
            "staging hidden",
            "rt-mdm speedup",
        ],
        &rows,
    )
}

/// F4 — impact of the SRAM fetch-buffer budget: per-model latency and
/// the admissibility of a control+model mix. Expected shape: latency
/// improves quickly above the largest-layer floor, then plateaus; very
/// large buffers waste SRAM without gain (and eventually cost
/// schedulability through coarser non-preemptive segments — bounded here
/// by the framework's compute cap).
pub fn f4_sram_budget() -> String {
    let cells: Vec<(rtmdm_dnn::Model, u64)> = [zoo::resnet8(), zoo::autoencoder()]
        .into_iter()
        .flat_map(|model| [1u64, 2, 3, 4].into_iter().map(move |m| (model.clone(), m)))
        .collect();
    let rows = par_map_seeded(cells, |(model, mult)| {
        let cost = CostModel::cmsis_nn_m7();
        let platform = eval_platform();
        let floor = auto_buffer(&model);
        let buffer = floor * mult;
        let seg = segment_model(&model, &cost, buffer).expect("≥ floor");
        let lat =
            pipeline::isolated_latency(&seg, &platform, ExecutionStrategy::OverlappedPrefetch);
        // Admissibility of a tight-control + model mix at this buffer.
        let mut fw = RtMdm::new(platform.clone()).expect("platform");
        fw.add_task(TaskSpec::new("control", zoo::micro_mlp(), 20_000, 20_000))
            .expect("control");
        fw.add_task(
            TaskSpec::new("dnn", model.clone(), 500_000, 500_000).with_buffer_bytes(buffer),
        )
        .expect("dnn");
        let admitted = match fw.admit() {
            Ok(a) if a.schedulable() => "yes",
            Ok(_) => "NO (timing)",
            Err(_) => "NO (sram)",
        };
        vec![
            model.name().to_owned(),
            format!("{} KiB", buffer / 1024),
            seg.len().to_string(),
            ms(lat, platform.cpu),
            format!("{} KiB", 2 * buffer / 1024),
            admitted.to_owned(),
        ]
    });
    report::table(
        &[
            "model",
            "buffer",
            "segments",
            "rt-mdm latency ms",
            "sram for buffers",
            "mix admitted",
        ],
        &rows,
    )
}

/// F5 — impact of external-memory bandwidth: latency of a compute-bound
/// and a fetch-bound model, and where rt-mdm converges to the
/// all-in-SRAM ideal. Expected shape: the fetch-bound autoencoder gains
/// dramatically with bandwidth; resnet8 is flat (its staging hides).
pub fn f5_bandwidth() -> String {
    let cells: Vec<(rtmdm_dnn::Model, u64)> = [zoo::resnet8(), zoo::autoencoder()]
        .into_iter()
        .flat_map(|model| {
            [10u64, 20, 40, 80, 160, 320]
                .into_iter()
                .map(move |mbps| (model.clone(), mbps))
        })
        .collect();
    let rows = par_map_seeded(cells, |(model, mbps)| {
        let cost = CostModel::cmsis_nn_m7();
        let base = eval_platform();
        let seg = segment_model(&model, &cost, auto_buffer(&model)).expect("fits");
        let platform = base.with_ext_mem(ExtMemConfig::from_bandwidth(
            ExtMemKind::Custom,
            base.cpu,
            mbps * 1_000_000,
            Cycles::new(120),
        ));
        let rtmdm =
            pipeline::isolated_latency(&seg, &platform, ExecutionStrategy::OverlappedPrefetch);
        let naive =
            pipeline::isolated_latency(&seg, &platform, ExecutionStrategy::FetchThenCompute);
        let ideal = pipeline::isolated_latency(&seg, &platform, ExecutionStrategy::AllInSram);
        let overhead = if ideal.get() > 0 {
            format!(
                "{:.1}%",
                100.0 * (rtmdm.get().saturating_sub(ideal.get())) as f64 / ideal.get() as f64
            )
        } else {
            "n/a".to_owned()
        };
        vec![
            model.name().to_owned(),
            format!("{mbps} MB/s"),
            ms(rtmdm, platform.cpu),
            ms(naive, platform.cpu),
            ms(ideal, platform.cpu),
            overhead,
        ]
    });
    report::table(
        &[
            "model",
            "bandwidth",
            "rt-mdm ms",
            "fetch-then-compute ms",
            "all-in-sram ms",
            "rt-mdm overhead vs ideal",
        ],
        &rows,
    )
}
