//! Figure F9 — energy per strategy (extension experiment).
//!
//! The gated dispatcher idles the CPU (WFI) whenever the top job waits
//! on its DMA, and overlapped prefetch keeps staging off the CPU
//! entirely; busy-wait staging (B1/B2) burns active-CPU energy for every
//! staged byte. This experiment accounts a 5-second run of the
//! sensor-node mix under each strategy; the four strategy runs are
//! independent cells for [`par_map_seeded`].

use rtmdm_core::{report, FrameworkOptions, RtMdm, Strategy, TaskSpec};
use rtmdm_dnn::zoo;
use rtmdm_mcusim::EnergyModel;

use crate::par::par_map_seeded;

use super::eval_platform;

/// F9 — energy breakdown per strategy on a staging-heavy mix
/// (control @20 ms + kws @100 ms + anomaly autoencoder @100 ms,
/// stm32f746-qspi, stm32f7 energy coefficients; the autoencoder stages
/// ≈2.6 MB/s). Expected shape: rt-mdm ≈ all-in-SRAM in CPU-active
/// energy (staging rides the DMA) and strictly below the busy-wait
/// baselines, which burn active-CPU energy for every staged byte;
/// external-memory energy is identical for every staging strategy
/// (same bytes), so the CPU term decides.
pub fn f9_energy() -> String {
    let strategies = vec![
        ("rt-mdm", Strategy::RtMdm),
        ("fetch-then-compute (B1)", Strategy::FetchThenCompute),
        ("whole-dnn (B2)", Strategy::WholeDnn),
        ("all-in-sram (B3)", Strategy::AllInSram),
    ];
    let rows = par_map_seeded(strategies, |(label, strategy)| {
        let platform = eval_platform();
        let energy = EnergyModel::stm32f7();
        let horizon_us = 5_000_000u64;
        let options = FrameworkOptions {
            force_strategy: Some(strategy),
            ..FrameworkOptions::default()
        };
        let mut fw = RtMdm::with_options(platform.clone(), options).expect("platform");
        fw.add_task(TaskSpec::new("control", zoo::micro_mlp(), 20_000, 20_000))
            .expect("control");
        fw.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))
            .expect("kws");
        fw.add_task(TaskSpec::new(
            "anomaly",
            zoo::autoencoder(),
            100_000,
            100_000,
        ))
        .expect("anomaly");
        let run = fw.simulate(horizon_us).expect("simulate");
        let mut r = run.energy(&energy);
        // Busy-wait strategies hide their staged bytes inside compute;
        // charge external-memory energy from ground truth instead (the
        // bytes read are identical across staging strategies).
        if matches!(strategy, Strategy::FetchThenCompute | Strategy::WholeDnn) {
            let bytes: u64 = run
                .names
                .iter()
                .zip(&run.result.stats)
                .map(|(name, stats)| {
                    let weights = fw
                        .specs()
                        .iter()
                        .find(|s| &s.name == name)
                        .map(|s| s.model.total_weight_bytes())
                        .unwrap_or(0);
                    stats.completions * weights
                })
                .sum();
            r.ext_mem_pj = bytes * energy.ext_read_pj_per_byte;
        }
        vec![
            label.to_owned(),
            (r.cpu_active_pj / 1_000_000).to_string(),
            (r.cpu_idle_pj / 1_000_000).to_string(),
            (r.ext_mem_pj / 1_000_000).to_string(),
            r.total_uj().to_string(),
            run.energy(&energy).avg_power_uw(platform.cpu).to_string(),
            run.deadline_misses().to_string(),
        ]
    });
    report::table(
        &[
            "strategy",
            "cpu active µJ",
            "cpu idle µJ",
            "ext-mem µJ",
            "total µJ",
            "avg power µW",
            "misses",
        ],
        &rows,
    )
}
