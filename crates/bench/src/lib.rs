//! # rtmdm-bench — the experiment harness
//!
//! One function (and one `src/bin` wrapper) per table and figure of the
//! reconstructed evaluation (see `DESIGN.md` §4). Every experiment
//! prints its rows to stdout and writes them to `results/<id>.txt` so
//! `EXPERIMENTS.md` can quote them verbatim.
//!
//! Run everything with:
//!
//! ```sh
//! cargo run -p rtmdm-bench --release --bin run_all
//! ```
//!
//! Sweeps run their `(parameter, seed)` cells on a scoped worker pool
//! (see [`par`]); set `RTMDM_THREADS` to pin the worker count
//! (`RTMDM_THREADS=1` forces the plain serial path). Emitted tables are
//! byte-identical for any thread count.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod experiments;
pub mod par;
pub mod telemetry;

use std::fs;
use std::path::PathBuf;

/// Directory experiment outputs land in (repo-root `results/`).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → repo root is two levels up.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p
}

/// Prints `content` and persists it as `results/<id>.txt`.
pub fn emit(id: &str, content: &str) {
    println!("==== {id} ====\n{content}");
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_ok() {
        let _ = fs::write(dir.join(format!("{id}.txt")), content);
    }
}
