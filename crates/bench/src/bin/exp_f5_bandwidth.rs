//! Regenerates experiment `f5_bandwidth` (see DESIGN.md §4).
fn main() {
    rtmdm_bench::emit("f5_bandwidth", &rtmdm_bench::experiments::f5_bandwidth());
}
