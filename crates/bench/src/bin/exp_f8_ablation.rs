//! Regenerates experiment `f8_ablation` (see DESIGN.md §4).
fn main() {
    rtmdm_bench::emit("f8_ablation", &rtmdm_bench::experiments::f8_ablation());
}
