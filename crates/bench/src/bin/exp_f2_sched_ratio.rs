//! Regenerates experiment `f2_sched_ratio` (see DESIGN.md §4).
fn main() {
    rtmdm_bench::emit(
        "f2_sched_ratio",
        &rtmdm_bench::experiments::f2_sched_ratio(),
    );
}
