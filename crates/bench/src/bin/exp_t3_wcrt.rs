//! Regenerates experiment `t3_wcrt` (see DESIGN.md §4).
fn main() {
    rtmdm_bench::emit("t3_wcrt", &rtmdm_bench::experiments::t3_wcrt());
}
