//! Regenerates experiment `f14_explore_scale` (see DESIGN.md §4).
fn main() {
    rtmdm_bench::emit(
        "f14_explore_scale",
        &rtmdm_bench::experiments::f14_explore_scale(),
    );
}
