//! Regenerates experiment `t2_platforms` (see DESIGN.md §4).
fn main() {
    rtmdm_bench::emit("t2_platforms", &rtmdm_bench::experiments::t2_platforms());
}
