//! Regenerates experiment `f13_blame` (see DESIGN.md §4).
fn main() {
    rtmdm_bench::emit("f13_blame", &rtmdm_bench::experiments::f13_blame());
}
