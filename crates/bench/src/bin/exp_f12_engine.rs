//! Regenerates experiment `f12_engine` (see DESIGN.md §4).
fn main() {
    rtmdm_bench::emit("f12_engine", &rtmdm_bench::experiments::f12_engine());
}
