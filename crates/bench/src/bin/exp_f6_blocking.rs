//! Regenerates experiment `f6_blocking` (see DESIGN.md §4).
fn main() {
    rtmdm_bench::emit("f6_blocking", &rtmdm_bench::experiments::f6_blocking());
}
