//! Regenerates experiment `f14_explore` (see DESIGN.md §4).
fn main() {
    rtmdm_bench::emit("f14_explore", &rtmdm_bench::experiments::f14_explore());
}
