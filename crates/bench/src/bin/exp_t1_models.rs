//! Regenerates experiment `t1_models` (see DESIGN.md §4).
fn main() {
    rtmdm_bench::emit("t1_models", &rtmdm_bench::experiments::t1_models());
}
