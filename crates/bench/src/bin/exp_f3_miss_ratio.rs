//! Regenerates experiment `f3_miss_ratio` (see DESIGN.md §4).
fn main() {
    rtmdm_bench::emit("f3_miss_ratio", &rtmdm_bench::experiments::f3_miss_ratio());
}
