//! Regenerates experiment `f9_energy` (see DESIGN.md §4).
fn main() {
    rtmdm_bench::emit("f9_energy", &rtmdm_bench::experiments::f9_energy());
}
