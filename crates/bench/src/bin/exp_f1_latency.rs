//! Regenerates experiment `f1_latency` (see DESIGN.md §4).
fn main() {
    rtmdm_bench::emit("f1_latency", &rtmdm_bench::experiments::f1_latency());
}
