//! Regenerates experiment `f10_platforms` (see DESIGN.md §4).
fn main() {
    rtmdm_bench::emit("f10_platforms", &rtmdm_bench::experiments::f10_platforms());
}
