//! Regenerates experiment `f15_fleet` (see DESIGN.md §4).
fn main() {
    rtmdm_bench::emit("f15_fleet", &rtmdm_bench::experiments::f15_fleet());
}
