//! Regenerates experiment `f7_opa` (see DESIGN.md §4).
fn main() {
    rtmdm_bench::emit("f7_opa", &rtmdm_bench::experiments::f7_opa());
}
