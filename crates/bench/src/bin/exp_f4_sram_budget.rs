//! Regenerates experiment `f4_sram_budget` (see DESIGN.md §4).
fn main() {
    rtmdm_bench::emit(
        "f4_sram_budget",
        &rtmdm_bench::experiments::f4_sram_budget(),
    );
}
