//! Regenerates every table and figure of the evaluation in one go,
//! reporting per-experiment wall time. Worker count comes from
//! `RTMDM_THREADS` (default: available parallelism); the emitted tables
//! are byte-identical for any thread count.
use std::time::Instant;

use rtmdm_bench::{emit, experiments as e, par};

type Experiment = (&'static str, fn() -> String);

fn main() {
    let experiments: [Experiment; 13] = [
        ("t1_models", e::t1_models),
        ("t2_platforms", e::t2_platforms),
        ("t3_wcrt", e::t3_wcrt),
        ("f1_latency", e::f1_latency),
        ("f2_sched_ratio", e::f2_sched_ratio),
        ("f3_miss_ratio", e::f3_miss_ratio),
        ("f4_sram_budget", e::f4_sram_budget),
        ("f5_bandwidth", e::f5_bandwidth),
        ("f6_blocking", e::f6_blocking),
        ("f7_opa", e::f7_opa),
        ("f8_ablation", e::f8_ablation),
        ("f9_energy", e::f9_energy),
        ("f10_platforms", e::f10_platforms),
    ];
    println!("run_all: {} workers", par::num_threads());
    let total = Instant::now();
    for (id, run) in experiments {
        let start = Instant::now();
        let output = run();
        let elapsed = start.elapsed();
        emit(id, &output);
        println!("-- {id}: {:.2}s", elapsed.as_secs_f64());
    }
    println!("run_all total: {:.2}s", total.elapsed().as_secs_f64());
}
