//! Regenerates every table and figure of the evaluation in one go,
//! reporting per-experiment wall time. Worker count comes from
//! `RTMDM_THREADS` (default: available parallelism); the emitted tables
//! are byte-identical for any thread count.
//!
//! Besides the tables, the run records telemetry through the global
//! metrics registry and writes `results/metrics.json` plus the
//! schema-stable `BENCH_run_all.json` at the repo root (see
//! [`rtmdm_bench::telemetry`]).
use std::time::Instant;

use rtmdm_bench::{emit, experiments as e, par, results_dir, telemetry};

type Experiment = (&'static str, fn() -> String);

fn main() {
    let experiments: [Experiment; 19] = [
        ("t1_models", e::t1_models),
        ("t2_platforms", e::t2_platforms),
        ("t3_wcrt", e::t3_wcrt),
        ("f1_latency", e::f1_latency),
        ("f2_sched_ratio", e::f2_sched_ratio),
        ("f3_miss_ratio", e::f3_miss_ratio),
        ("f4_sram_budget", e::f4_sram_budget),
        ("f5_bandwidth", e::f5_bandwidth),
        ("f6_blocking", e::f6_blocking),
        ("f7_opa", e::f7_opa),
        ("f8_ablation", e::f8_ablation),
        ("f9_energy", e::f9_energy),
        ("f10_platforms", e::f10_platforms),
        ("f11_robustness", e::f11_robustness),
        ("f12_engine", e::f12_engine),
        ("f13_blame", e::f13_blame),
        ("f14_explore", e::f14_explore),
        ("f14_explore_scale", e::f14_explore_scale),
        ("f15_fleet", e::f15_fleet),
    ];
    let registry = rtmdm_obs::metrics::global();
    registry.enable(true);
    registry.reset();
    println!("run_all: {} workers", par::num_threads());
    let total = Instant::now();
    let mut records = Vec::with_capacity(experiments.len());
    let mut before = registry.snapshot();
    for (id, run) in experiments {
        let start = Instant::now();
        let output = run();
        let elapsed = start.elapsed();
        emit(id, &output);
        let after = registry.snapshot();
        let rec = telemetry::ExperimentMetrics::from_snapshots(id, elapsed, &before, &after);
        println!(
            "-- {id}: {:.2}s ({} sim runs, {} sim cycles)",
            rec.wall_seconds, rec.sim_runs, rec.sim_cycles
        );
        records.push(rec);
        before = after;
    }
    // Registry snapshot first, so the throughput probe's own runs do
    // not leak into the experiment aggregate.
    let final_snapshot = registry.snapshot();
    let engine = e::engine_comparison();
    println!(
        "-- engine probe: des {:.2e} cyc/s vs legacy {:.2e} cyc/s \
         ({:.2}x, equivalent: {})",
        engine.des_cycles_per_second,
        engine.legacy_cycles_per_second,
        engine.speedup,
        engine.equivalent
    );
    // The fleet probe already ran inside the f15_fleet experiment;
    // this reuses its cached record instead of re-timing the fleet.
    let fleet = e::fleet_comparison();
    println!(
        "-- fleet probe: warm {:.0} q/s vs cold {:.0} q/s \
         ({:.1}x, identical: {})",
        fleet.warm_queries_per_second,
        fleet.cold_queries_per_second,
        fleet.speedup,
        fleet.identical
    );
    // Likewise cached from the f14_explore_scale experiment.
    let explore = e::explore_comparison();
    println!(
        "-- explore probe: fork {:.0} states/s vs replay {:.0} states/s \
         at {} tasks ({:.1}x, identical: {})",
        explore.fork_states_per_second,
        explore.replay_states_per_second,
        explore.tasks,
        explore.speedup,
        explore.identical
    );
    let doc = telemetry::RunMetrics::new(
        par::num_threads(),
        records,
        final_snapshot,
        engine,
        fleet,
        explore,
    );
    let json = serde_json::to_string(&doc).expect("metrics serialize");
    let metrics_path = results_dir().join("metrics.json");
    if let Err(err) = std::fs::write(&metrics_path, &json) {
        eprintln!("run_all: cannot write {}: {err}", metrics_path.display());
    }
    let summary = serde_json::to_string(&doc.bench_summary()).expect("summary serialize");
    let summary_path = telemetry::bench_summary_path();
    if let Err(err) = std::fs::write(&summary_path, &summary) {
        eprintln!("run_all: cannot write {}: {err}", summary_path.display());
    }
    println!(
        "run_all total: {:.2}s ({} sim runs, {} sim cycles) -> {}",
        total.elapsed().as_secs_f64(),
        doc.totals.sim_runs,
        doc.totals.sim_cycles,
        metrics_path.display()
    );
}
