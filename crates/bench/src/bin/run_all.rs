//! Regenerates every table and figure of the evaluation in one go.
use rtmdm_bench::{emit, experiments as e};

fn main() {
    emit("t1_models", &e::t1_models());
    emit("t2_platforms", &e::t2_platforms());
    emit("t3_wcrt", &e::t3_wcrt());
    emit("f1_latency", &e::f1_latency());
    emit("f2_sched_ratio", &e::f2_sched_ratio());
    emit("f3_miss_ratio", &e::f3_miss_ratio());
    emit("f4_sram_budget", &e::f4_sram_budget());
    emit("f5_bandwidth", &e::f5_bandwidth());
    emit("f6_blocking", &e::f6_blocking());
    emit("f7_opa", &e::f7_opa());
    emit("f8_ablation", &e::f8_ablation());
    emit("f9_energy", &e::f9_energy());
    emit("f10_platforms", &e::f10_platforms());
}
