//! Regenerates experiment `f11_robustness` (see DESIGN.md §4).
fn main() {
    rtmdm_bench::emit(
        "f11_robustness",
        &rtmdm_bench::experiments::f11_robustness(),
    );
}
