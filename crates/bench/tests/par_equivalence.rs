//! Serial/parallel equivalence of the experiment harness.
//!
//! The harness guarantees that emitted tables are byte-identical for
//! any `RTMDM_THREADS` value. These tests pin that guarantee at two
//! levels: raw `(util, seed)` sweep cells over the generator and
//! simulator (the determinism the harness relies on), and a full
//! experiment rendered to its final table string.

use std::sync::Mutex;

use rtmdm_bench::experiments::f1_latency;
use rtmdm_bench::par::{par_map_seeded, par_map_with_threads};
use rtmdm_mcusim::PlatformConfig;
use rtmdm_sched::assign::dm_order;
use rtmdm_sched::gen::{generate, TasksetParams};
use rtmdm_sched::sim::{simulate, Policy, SimConfig};

/// Serializes the tests that mutate `RTMDM_THREADS` — the test harness
/// runs tests concurrently and the environment is process-global.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// One generator+simulator cell rendered to a stable string, so any
/// cross-thread nondeterminism shows up as a string mismatch.
fn run_cell((util_pct, seed): (u64, u64)) -> String {
    let platform = PlatformConfig::stm32f746_qspi();
    let mut params = TasksetParams::baseline(4, util_pct * 10_000);
    params.segments_range = (3, 6);
    let ts = generate(&params, &platform, seed);
    let ordered = ts.reordered(&dm_order(&ts));
    let horizon = ordered.tasks().iter().map(|t| t.period).max().unwrap() * 4;
    let config = SimConfig::new(horizon, Policy::FixedPriority);
    let run = simulate(&ordered, &platform, &config);
    let responses: Vec<String> = (0..ordered.len())
        .map(|i| run.max_response_of(i).to_string())
        .collect();
    format!(
        "misses={} max=[{}]",
        run.total_misses(),
        responses.join(",")
    )
}

#[test]
fn sweep_cells_match_serial_at_any_width() {
    let cells: Vec<(u64, u64)> = [10u64, 30, 50]
        .iter()
        .flat_map(|&u| (0..12u64).map(move |s| (u, s)))
        .collect();
    let serial: Vec<String> = cells.iter().copied().map(run_cell).collect();
    for threads in [2, 3, 8] {
        let parallel = par_map_with_threads(threads, cells.clone(), run_cell);
        assert_eq!(parallel, serial, "threads={threads}");
    }
}

#[test]
fn rtmdm_threads_one_forces_the_serial_path() {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("RTMDM_THREADS", "1");
    let cells: Vec<(u64, u64)> = (0..6u64).map(|s| (40, s)).collect();
    let serial: Vec<String> = cells.iter().copied().map(run_cell).collect();
    assert_eq!(par_map_seeded(cells, run_cell), serial);
    std::env::remove_var("RTMDM_THREADS");
}

#[test]
fn full_experiment_is_byte_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("RTMDM_THREADS", "1");
    let serial = f1_latency();
    std::env::set_var("RTMDM_THREADS", "8");
    let parallel = f1_latency();
    std::env::remove_var("RTMDM_THREADS");
    assert_eq!(parallel, serial);
}
