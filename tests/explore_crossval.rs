//! Two-way cross-validation of the exhaustive explorer against the
//! simulator, in both directions and on both engines.
//!
//! 1. **Admitted implies explorer-safe** — every zoo model × platform
//!    cell whose static report is clean explores to completion with no
//!    `RTM050`/`RTM051`, under the deterministic WCET lattice and (for
//!    the reference two-task cell) under sub-WCET execution endpoints.
//!
//! 2. **Explorer-found implies simulator-reproducible** — every
//!    directed violation scenario (overload miss, widened-window race,
//!    exhausted retry budget) yields a witness whose script, replayed
//!    through *both* time-advancement engines, reproduces the violating
//!    event byte-identically at the explorer-predicted cycle, with the
//!    blame decomposition naming the same dominant cause. A property
//!    test extends direction 2 over random generated task sets.
//!
//! 3. **Strategy and thread-count equivalence** — the fork-based
//!    incremental explorer and the replay-from-zero reference produce
//!    identical verdicts, counters, and witness JSON over random task
//!    sets × jitter × fault environments × both engines, and the
//!    `check --explore` pipeline's output is byte-identical at any
//!    speculative worker count.

use proptest::prelude::*;

use rt_mdm::check::{
    explore, ExploreLimits, ExploreOrder, ExploreOutcome, ExploreStrategy, Rule, Witness,
};
use rt_mdm::core::{CheckOptions, ExploreOptions, SystemSpec, TaskSpec};
use rt_mdm::dnn::zoo;
use rt_mdm::mcusim::{ContentionModel, Cycles, FaultPlan, PlatformConfig, TraceKind};
use rt_mdm::obs::attribute;
use rt_mdm::sched::gen::{generate, TasksetParams};
use rt_mdm::sched::sim::{Engine, Policy, SimConfig, SimResult};
use rt_mdm::sched::{Segment, SporadicTask, StagingMode, TaskSet};

fn cy(n: u64) -> Cycles {
    Cycles::new(n)
}

/// A contention- and overhead-free platform so directed scenarios have
/// exactly the cycle arithmetic their comments claim.
fn bare_platform() -> PlatformConfig {
    let mut p = PlatformConfig::stm32f746_qspi();
    p.contention = ContentionModel::NONE;
    p.context_switch_cycles = Cycles::ZERO;
    p.ext_mem.setup_cycles = Cycles::ZERO;
    p.ext_mem.cycles_per_byte_num = 1;
    p.ext_mem.cycles_per_byte_den = 1;
    p
}

fn base_config(horizon: u64) -> SimConfig {
    SimConfig {
        horizon: cy(horizon),
        policy: Policy::FixedPriority,
        exec_scale_min_ppm: 1_000_000,
        seed: 0,
        work_conserving: false,
        fault: FaultPlan::NONE,
        engine: Engine::Des,
        attribution: true,
        staging_window: 2,
    }
}

/// Replays `w` on both engines and asserts the runs are byte-identical
/// to each other and reproduce the witnessed violation at `w.at`.
/// Returns the (shared) replay result.
fn assert_witness_replays_on_both_engines(w: &Witness) -> SimResult {
    let mut legacy_cfg = w.config.clone();
    legacy_cfg.engine = Engine::Legacy;
    let mut des_cfg = w.config.clone();
    des_cfg.engine = Engine::Des;
    let legacy = w.replay_on(&legacy_cfg);
    let des = w.replay_on(&des_cfg);
    assert_eq!(
        legacy.trace.events(),
        des.trace.events(),
        "witness replay diverges between engines"
    );
    assert_eq!(legacy.stats, des.stats);
    assert_eq!(legacy.races, des.races);

    match w.rule.as_str() {
        "RTM051" => {
            let race = des
                .races
                .iter()
                .find(|r| r.at.get() == w.at)
                .unwrap_or_else(|| panic!("no race at predicted cycle {} in replay", w.at));
            assert_eq!(race.task, w.task);
            assert_eq!(race.job, w.job);
        }
        _ => {
            let miss = des
                .trace
                .events()
                .iter()
                .find(|e| {
                    matches!(
                        e.kind,
                        TraceKind::DeadlineMissed { task, job }
                            if task.0 == w.task && job.0 == w.job
                    )
                })
                .expect("replay reproduces the witnessed miss");
            assert_eq!(
                miss.time.get(),
                w.at,
                "explorer-predicted miss instant != simulated miss instant"
            );
        }
    }

    // Blame agreement: attributing the replayed trace must name the
    // same dominant interference source for the victim job that the
    // explorer recorded in the witness.
    let replay_blame = attribute(&des.trace)
        .expect("replayed trace attributes")
        .jobs
        .iter()
        .find(|j| j.task.0 == w.task && j.job.0 == w.job)
        .and_then(|j| j.dominant_interference())
        .map(|(src, _)| src.to_string());
    assert_eq!(
        replay_blame, w.dominant_blame,
        "replay blame decomposition disagrees with the witness"
    );
    des
}

// ---------------------------------------------------------------------
// Direction 1: admitted cells are explorer-safe.
// ---------------------------------------------------------------------

/// Statically clean cells must explore to completion with no reachable
/// miss or race under the given execution-scale lattice.
fn assert_cell_explorer_safe(platform: PlatformConfig, tasks: &[TaskSpec], exec_min_ppm: u64) {
    let mut spec = SystemSpec::new(platform.clone());
    for t in tasks {
        spec.push(t.clone());
    }
    if !spec.check().is_clean() {
        return; // the property only claims anything for clean cells
    }
    let outcome = spec.check_with(&CheckOptions {
        explore: Some(ExploreOptions {
            exec_scale_min_ppm: exec_min_ppm,
            ..ExploreOptions::default()
        }),
    });
    let stats = outcome.explore_stats.expect("clean cells explore");
    assert!(
        stats.complete,
        "{}: exploration must cover the lattice",
        platform.name
    );
    assert!(
        !outcome
            .report
            .findings
            .iter()
            .any(|f| matches!(f.rule, Rule::Rtm050 | Rule::Rtm051)),
        "{}: admitted cell reached a violation:\n{}",
        platform.name,
        outcome.report.render_text()
    );
    assert!(outcome.witness.is_none());
}

#[test]
fn admitted_zoo_cells_are_explorer_safe() {
    type ModelBuilder = fn() -> rt_mdm::dnn::Model;
    let models: &[(&str, ModelBuilder)] = &[
        ("micro-mlp", zoo::micro_mlp),
        ("ds-cnn", zoo::ds_cnn),
        ("lenet5", zoo::lenet5),
        ("resnet8", zoo::resnet8),
        ("mobilenet-v1-025", zoo::mobilenet_v1_025),
        ("autoencoder", zoo::autoencoder),
    ];
    for platform in PlatformConfig::presets() {
        for (name, build) in models {
            let task = TaskSpec::new(*name, build(), 1_000_000, 1_000_000);
            assert_cell_explorer_safe(platform.clone(), &[task], 1_000_000);
        }
    }
}

#[test]
fn admitted_reference_pair_is_explorer_safe_under_exec_endpoints() {
    // The paper's reference cell, with the execution-time dimension
    // enabled: every job may run at WCET or at 60 % of it, and no
    // interleaving of those endpoints misses or races.
    let tasks = [
        TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000),
        TaskSpec::new("ic", zoo::resnet8(), 400_000, 400_000),
    ];
    assert_cell_explorer_safe(PlatformConfig::stm32f746_qspi(), &tasks, 600_000);
}

// ---------------------------------------------------------------------
// Direction 2: explorer findings replay on both engines.
// ---------------------------------------------------------------------

#[test]
fn overload_miss_witness_replays_on_both_engines() {
    let mut spec = SystemSpec::new(PlatformConfig::stm32f746_qspi());
    spec.push(TaskSpec::new("ic", zoo::resnet8(), 10_000, 10_000));
    let outcome = spec.check_with(&CheckOptions {
        explore: Some(ExploreOptions::default()),
    });
    assert!(outcome
        .report
        .findings
        .iter()
        .any(|f| f.rule == Rule::Rtm050));
    let w = outcome.witness.expect("overload yields a witness");
    assert_eq!(w.rule, "RTM050");
    assert_witness_replays_on_both_engines(&w);
}

#[test]
fn jitter_miss_witness_replays_on_both_engines() {
    // Feasible when periodic (600 compute in a 1000 deadline); a
    // 500-cycle release jitter pushes completion past the anchored
    // deadline on exactly one explored branch.
    let ts = TaskSet::from_tasks(vec![SporadicTask::new(
        "t",
        cy(2_000),
        cy(1_000),
        vec![Segment::new(cy(600), 0)],
        StagingMode::Resident,
    )
    .expect("valid task")]);
    let out = explore(
        &ts,
        &bare_platform(),
        &base_config(8_000),
        &ExploreLimits {
            max_states: 10_000,
            jitter_max_cycles: 500,
            ..ExploreLimits::default()
        },
    );
    let w = out.witness.expect("jitter miss yields a witness");
    assert_eq!(w.rule, "RTM050");
    assert_witness_replays_on_both_engines(&w);
}

#[test]
fn widened_window_race_witness_replays_on_both_engines() {
    let ts = TaskSet::from_tasks(vec![SporadicTask::new(
        "a",
        cy(2_000_000),
        cy(2_000_000),
        (0..4).map(|_| Segment::new(cy(200_000), 256)).collect(),
        StagingMode::Overlapped,
    )
    .expect("valid task")]);
    let mut cfg = base_config(2_000_000);
    cfg.staging_window = 3;
    let out = explore(&ts, &bare_platform(), &cfg, &ExploreLimits::default());
    let w = out.witness.expect("widened window yields a witness");
    assert_eq!(w.rule, "RTM051");
    assert_witness_replays_on_both_engines(&w);
}

#[test]
fn retry_budget_witness_replays_on_both_engines() {
    let ts = TaskSet::from_tasks(vec![SporadicTask::new(
        "a",
        cy(40_000),
        cy(40_000),
        (0..3).map(|_| Segment::new(cy(1_000), 4_096)).collect(),
        StagingMode::Overlapped,
    )
    .expect("valid task")]);
    let mut cfg = base_config(40_000);
    cfg.fault = FaultPlan {
        seed: 0,
        dma_fault_rate_ppm: 1,
        max_retries: 3,
        jitter_max_cycles: 0,
    };
    let out = explore(&ts, &bare_platform(), &cfg, &ExploreLimits::default());
    let w = out.witness.expect("fault paths yield a witness");
    assert_eq!(w.rule, "RTM052");
    assert_witness_replays_on_both_engines(&w);
}

#[test]
fn witness_json_round_trips_and_still_replays() {
    // The file the CLI writes is the witness itself: serializing,
    // re-parsing, and replaying must reproduce the identical run.
    let mut spec = SystemSpec::new(PlatformConfig::stm32f746_qspi());
    spec.push(TaskSpec::new("ic", zoo::resnet8(), 10_000, 10_000));
    let outcome = spec.check_with(&CheckOptions {
        explore: Some(ExploreOptions::default()),
    });
    let w = outcome.witness.expect("witness");
    let json = serde_json::to_string(&w).expect("witness serializes");
    let back: Witness = serde_json::from_str(&json).expect("witness re-parses");
    assert_eq!(back.schema, "rtmdm-witness/1");
    let a = w.replay();
    let b = back.replay();
    assert_eq!(a.trace.events(), b.trace.events());
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.races, b.races);
}

// ---------------------------------------------------------------------
// Property: any witness the explorer finds on a random generated set
// replays byte-identically on both engines.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(16),
        ..ProptestConfig::default()
    })]

    #[test]
    fn explored_witnesses_replay_byte_identically_on_both_engines(
        n in 1usize..4,
        util_ppm in 300_000u64..1_200_000,
        seed in 0u64..64,
        wide_exec in proptest::bool::ANY,
        with_jitter in proptest::bool::ANY,
    ) {
        let exec_min_ppm = if wide_exec { 500_000u64 } else { 1_000_000 };
        let jitter_max = if with_jitter { 40_000u64 } else { 0 };
        let platform = PlatformConfig::stm32f746_qspi();
        let mut params = TasksetParams::baseline(n, util_ppm).with_grid_periods();
        params.segments_range = (2, 4);
        let ts = generate(&params, &platform, seed);
        let horizon = ts.tasks().iter().map(|t| t.period).max().unwrap() * 2;
        let mut cfg = base_config(horizon.get());
        cfg.exec_scale_min_ppm = exec_min_ppm;
        let limits = ExploreLimits {
            max_states: 500,
            jitter_max_cycles: jitter_max,
            ..ExploreLimits::default()
        };
        let out = explore(&ts, &platform, &cfg, &limits);
        if let Some(w) = &out.witness {
            // Every violation must have been classified and replayed.
            prop_assert!(matches!(
                w.rule.as_str(),
                "RTM050" | "RTM051" | "RTM052"
            ));
            assert_witness_replays_on_both_engines(w);
        } else {
            // No witness: either proven safe or honestly inconclusive.
            prop_assert!(
                out.proven_safe()
                    || out.findings.iter().any(|f| f.rule == Rule::Rtm053),
                "findings: {:?}",
                out.findings
            );
        }
    }

    /// The differential contract behind `--strategy`: fork-based
    /// incremental exploration and replay-from-zero produce identical
    /// verdicts, counters, and witness JSON over random task sets ×
    /// jitter × fault environments × both engines.
    #[test]
    fn fork_and_replay_strategies_are_outcome_identical(
        n in 1usize..4,
        util_ppm in 300_000u64..1_200_000,
        seed in 0u64..64,
        wide_exec in proptest::bool::ANY,
        with_jitter in proptest::bool::ANY,
        with_faults in proptest::bool::ANY,
        legacy_engine in proptest::bool::ANY,
        deep_first in proptest::bool::ANY,
    ) {
        let platform = PlatformConfig::stm32f746_qspi();
        let mut params = TasksetParams::baseline(n, util_ppm).with_grid_periods();
        params.segments_range = (2, 4);
        let ts = generate(&params, &platform, seed);
        let horizon = ts.tasks().iter().map(|t| t.period).max().unwrap() * 2;
        let mut cfg = base_config(horizon.get());
        cfg.exec_scale_min_ppm = if wide_exec { 500_000 } else { 1_000_000 };
        if legacy_engine {
            cfg.engine = Engine::Legacy;
        }
        if with_faults {
            cfg.fault = FaultPlan {
                seed: 0,
                dma_fault_rate_ppm: 1,
                max_retries: 2,
                jitter_max_cycles: 0,
            };
        }
        let limits = ExploreLimits {
            max_states: 400,
            jitter_max_cycles: if with_jitter { 40_000 } else { 0 },
            order: if deep_first {
                ExploreOrder::DeepFirst
            } else {
                ExploreOrder::ShallowFirst
            },
            ..ExploreLimits::default()
        };
        let forked = explore(&ts, &platform, &cfg, &ExploreLimits {
            strategy: ExploreStrategy::Fork,
            ..limits
        });
        let replayed = explore(&ts, &platform, &cfg, &ExploreLimits {
            strategy: ExploreStrategy::Replay,
            ..limits
        });
        prop_assert_eq!(outcome_fingerprint(&forked), outcome_fingerprint(&replayed));
    }
}

/// Renders an exploration outcome into one comparable blob: every
/// finding, the witness JSON the CLI would write, and the counters.
fn outcome_fingerprint(out: &ExploreOutcome) -> String {
    let findings: Vec<String> = out
        .findings
        .iter()
        .map(|f| format!("{:?}|{}|{:?}", f.rule, f.message, f.task))
        .collect();
    let witness = out
        .witness
        .as_ref()
        .map(|w| serde_json::to_string(w).expect("witness serializes"));
    format!("{findings:?}\n{witness:?}\n{:?}", out.stats)
}

/// `check --explore` output is byte-identical at any speculative
/// worker count, for both strategies (the CI smoke repeats this on the
/// CLI binary with `RTMDM_THREADS=1` vs `8`).
#[test]
fn check_explore_pipeline_is_thread_count_invariant() {
    let run = |strategy, threads| {
        let mut spec = SystemSpec::new(PlatformConfig::stm32f746_qspi());
        spec.push(TaskSpec::new("ic", zoo::resnet8(), 10_000, 10_000));
        let outcome = spec.check_with(&CheckOptions {
            explore: Some(ExploreOptions {
                strategy,
                threads,
                ..ExploreOptions::default()
            }),
        });
        let w = outcome.witness.expect("overload yields a witness");
        format!(
            "{}\n{:?}\n{}",
            outcome.report.render_text(),
            outcome.explore_stats,
            serde_json::to_string(&w).expect("witness serializes"),
        )
    };
    for strategy in [ExploreStrategy::Fork, ExploreStrategy::Replay] {
        let one = run(strategy, 1);
        assert_eq!(one, run(strategy, 2), "{strategy:?}: 1 vs 2 workers");
        assert_eq!(one, run(strategy, 8), "{strategy:?}: 1 vs 8 workers");
    }
    assert_eq!(
        run(ExploreStrategy::Fork, 1),
        run(ExploreStrategy::Replay, 8),
        "strategies must agree byte for byte"
    );
}
