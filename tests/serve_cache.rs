//! Integration gate for the admission service's cache-correctness
//! invariant:
//!
//! > A warm answer (served from the content-addressed cache) is
//! > byte-identical to the cold answer (computed by a fresh service
//! > with every cache empty) for the same request line — across random
//! > task sets, platforms, analysis options, and single-task
//! > mutations — and a batch's bytes never depend on the worker count.
//!
//! This is what makes `rtmdm serve` sound: responses carry no
//! hit-versus-miss marker, so the only way the invariant can hold is
//! for every memoized sub-problem (lowering, RTA, headroom, whole
//! answers) to cache the exact value the direct computation produces.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rt_mdm::core::Service;

const PLATFORMS: &[&str] = &[
    "cortex-m4-lowend",
    "stm32f746-qspi",
    "stm32h743-ospi",
    "ideal-sram",
];

const MODELS: &[&str] = &[
    "micro-mlp",
    "ds-cnn",
    "lenet5",
    "resnet8",
    "mobilenet-v1-025",
    "autoencoder",
];

const PERIODS_US: &[u64] = &[20_000, 50_000, 100_000, 200_000, 500_000];

fn pick<'a, T: ?Sized>(rng: &mut StdRng, pool: &'a [&'a T]) -> &'a T {
    pool[rng.gen_range(0..pool.len())]
}

/// Renders one random well-formed request line. The drawn space covers
/// every platform preset, every zoo model, both policies, the
/// dma-awareness and work-conserving ablations, explicit and defaulted
/// deadlines, and occasional buffer/activation-budget overrides.
fn random_request(rng: &mut StdRng, id: &str) -> String {
    let platform = pick(rng, PLATFORMS);
    let mut options = Vec::new();
    if rng.gen_bool(0.3) {
        options.push(r#""policy":"edf""#.to_owned());
    }
    if rng.gen_bool(0.3) {
        options.push(r#""dma_aware_analysis":false"#.to_owned());
    }
    if rng.gen_bool(0.3) {
        options.push(r#""work_conserving":true"#.to_owned());
    }
    let n_tasks = rng.gen_range(1..=3usize);
    let tasks: Vec<String> = (0..n_tasks)
        .map(|i| {
            let model = pick(rng, MODELS);
            let period = PERIODS_US[rng.gen_range(0..PERIODS_US.len())];
            let mut fields = vec![
                format!(r#""name":"t{i}""#),
                format!(r#""model":"{model}""#),
                format!(r#""period_us":{period}"#),
            ];
            if rng.gen_bool(0.5) {
                let deadline = period * rng.gen_range(60..=100u64) / 100;
                fields.push(format!(r#""deadline_us":{deadline}"#));
            }
            if rng.gen_bool(0.25) {
                fields.push(format!(
                    r#""buffer_bytes":{}"#,
                    4096 * rng.gen_range(1..=8u64)
                ));
            }
            if rng.gen_bool(0.25) {
                fields.push(format!(
                    r#""activation_budget_bytes":{}"#,
                    1024 * rng.gen_range(8..=64u64)
                ));
            }
            format!("{{{}}}", fields.join(","))
        })
        .collect();
    format!(
        r#"{{"id":"{id}","platform":"{platform}","options":{{{}}},"tasks":[{}]}}"#,
        options.join(","),
        tasks.join(",")
    )
}

/// Mutates one task of a request line: a different period (the nearest
/// cache-relevant perturbation — everything but that one task's
/// lowering should be reusable).
fn mutate_period(line: &str, new_period: u64) -> String {
    let start = line.find(r#""period_us":"#).expect("request has a period") + 12;
    let end = start
        + line[start..]
            .find(|c: char| !c.is_ascii_digit())
            .expect("digits end");
    format!("{}{}{}", &line[..start], new_period, &line[end..])
}

/// The id is echoed verbatim; strip it so responses to the same
/// question under different ids can be compared.
fn strip_id(answer: &str) -> String {
    let start = answer.find(r#""id":"#).expect("answer has an id");
    let end = answer[start..].find(',').expect("id is not last") + start;
    format!("{}{}", &answer[..start], &answer[end + 1..])
}

fn cold(line: &str) -> String {
    Service::new().answer_line(line)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Warm answers are byte-identical to cold ones across random
    /// requests and single-task mutations, including re-asking after
    /// the mutation (a full-answer cache hit).
    #[test]
    fn warm_equals_cold_under_mutation(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = random_request(&mut rng, "q-base");
        let mutated = mutate_period(&base, 1_000_000);

        let service = Service::new();
        let warm_base_first = service.answer_line(&base);
        let warm_mut = service.answer_line(&mutated);
        let warm_base_again = service.answer_line(&base);

        prop_assert_eq!(&warm_base_first, &cold(&base), "first ask vs cold");
        prop_assert_eq!(&warm_mut, &cold(&mutated), "mutated ask vs cold");
        prop_assert_eq!(&warm_base_again, &warm_base_first, "cache hit changed bytes");

        let stats = service.stats();
        prop_assert_eq!(stats.queries, 3);
        prop_assert!(stats.answers_reused >= 1, "third ask must hit the answer cache");
    }

    /// One batch, two worker counts, byte-identical output vectors:
    /// results depend on input order only, never on which thread
    /// answered which line.
    #[test]
    fn thread_count_never_changes_bytes(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lines = Vec::new();
        for i in 0..4 {
            let line = random_request(&mut rng, &format!("q-{i}"));
            // Duplicates (fresh ids) exercise hit-vs-miss races between
            // workers; the malformed line exercises error records.
            lines.push(line.clone());
            lines.push(line.replace(r#""id":"q-"#, r#""id":"dup-"#));
        }
        lines.push("{not json".to_owned());

        let one = Service::new().answer_batch_with_threads(1, lines.clone());
        let eight = Service::new().answer_batch_with_threads(8, lines.clone());
        prop_assert_eq!(&one, &eight, "worker count changed batch bytes");
        prop_assert_eq!(one.len(), lines.len());
        prop_assert!(one.last().unwrap().contains(r#""ok":false"#));
    }
}

/// Two textual spellings of one question (different ids, defaults
/// spelled out) share a cache entry, and each response still echoes
/// its own id.
#[test]
fn equivalent_requests_share_answers_across_ids() {
    let a = r#"{"id":"alpha","platform":"stm32f746-qspi","options":{},"tasks":[{"name":"kws","model":"ds-cnn","period_us":100000}]}"#;
    let b = r#"{"id":"beta","platform":"stm32f746-qspi","options":{},"tasks":[{"name":"kws","model":"ds-cnn","period_us":100000,"deadline_us":100000}]}"#;
    let service = Service::new();
    let ra = service.answer_line(a);
    let rb = service.answer_line(b);
    assert!(ra.contains(r#""id":"alpha""#));
    assert!(rb.contains(r#""id":"beta""#));
    assert_eq!(strip_id(&ra), strip_id(&rb));
    assert_eq!(service.stats().answers_reused, 1);
}

/// A malformed line in the middle of a batch yields exactly one error
/// record and leaves the neighbouring answers untouched.
#[test]
fn malformed_lines_do_not_poison_the_batch() {
    let good = r#"{"id":"ok","platform":"stm32f746-qspi","options":{},"tasks":[{"name":"kws","model":"ds-cnn","period_us":100000}]}"#;
    let lines = vec![
        good.to_owned(),
        r#"{"id":"bad","platform":"no-such-board","options":{},"tasks":[]}"#.to_owned(),
        "]]]".to_owned(),
        good.to_owned(),
    ];
    let service = Service::new();
    let out = service.answer_batch(lines);
    assert_eq!(out.len(), 4);
    assert_eq!(out[0], out[3]);
    assert!(out[0].contains(r#""ok":true"#));
    assert!(out[1].contains(r#""ok":false"#) && out[1].contains("no-such-board"));
    assert!(out[2].contains(r#""ok":false"#));
    assert_eq!(out[0], cold(good));
}
