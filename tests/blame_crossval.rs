//! Cross-validation of the measured blame decomposition (`rtmdm
//! explain`) against the response-time analysis.
//!
//! Three layers:
//!
//! 1. **Conservation, zero tolerance** — for any task set, engine,
//!    dispatch discipline, execution jitter, fault environment, and
//!    deadline-miss policy, [`attribute`](rt_mdm::obs::attribute)
//!    succeeds and every completed job's six terms sum *exactly* to its
//!    response time.
//!
//! 2. **Measured implies bounded** — for admitted (check-clean) sets at
//!    WCET, every job's measured interference terms sit inside the RTA's
//!    per-cause budgets from
//!    [`interference_bounds`](rt_mdm::sched::analysis::interference_bounds):
//!    CPU time stolen by other jobs plus gated dispatch wait never
//!    exceeds `B_i + I_i`, and the job's own compute plus bus-contention
//!    stall never exceeds its inflated `Σ e_k`.
//!
//! 3. **Cause implies blame** — directed scenarios where the
//!    interference provably exists (a higher-priority task firing inside
//!    a lower-priority job's window; injected DMA faults on a blocking
//!    lead-in fetch) must surface as the matching nonzero blame term.

use proptest::prelude::*;

use rt_mdm::mcusim::{Cycles, FaultPlan, PlatformConfig, TaskId};
use rt_mdm::obs::{attribute, BlameSource};
use rt_mdm::sched::analysis::{
    interference_bounds, rta_limited_preemption_with, SchedulerMode, TaskTiming,
};
use rt_mdm::sched::assign::dm_order;
use rt_mdm::sched::gen::{generate, TasksetParams};
use rt_mdm::sched::sim::{simulate, Engine, Policy, SimConfig};
use rt_mdm::sched::{MissPolicy, Segment, SporadicTask, StagingMode, TaskSet};

fn platform() -> PlatformConfig {
    PlatformConfig::stm32f746_qspi()
}

fn cy(n: u64) -> Cycles {
    Cycles::new(n)
}

fn horizon(ts: &TaskSet) -> Cycles {
    let max_t = ts.tasks().iter().map(|t| t.period).max().unwrap();
    let min_t = ts.tasks().iter().map(|t| t.period).min().unwrap();
    (max_t * 4).max(min_t * 8)
}

fn with_miss_policy(ts: &TaskSet, policy: MissPolicy) -> TaskSet {
    TaskSet::from_tasks(
        ts.tasks()
            .iter()
            .map(|t| t.clone().with_miss_policy(policy))
            .collect(),
    )
}

/// Layer 2: for an admitted set at WCET, each job's measured terms obey
/// the analysis' per-cause budgets.
fn check_measured_within_bounds(
    ts: &TaskSet,
    mode: SchedulerMode,
    seed: u64,
) -> Result<(), TestCaseError> {
    let p = platform();
    let ordered = ts.reordered(&dm_order(ts));
    let outcome = rta_limited_preemption_with(&ordered, &p, mode);
    if !outcome.schedulable {
        return Ok(()); // the bounds only claim anything for admitted sets
    }
    let bounds = interference_bounds(&ordered, &p, mode);
    let exec_totals: Vec<Cycles> = ordered
        .tasks()
        .iter()
        .map(|t| {
            TaskTiming::derive(t, &p)
                .exec
                .iter()
                .copied()
                .sum::<Cycles>()
        })
        .collect();
    let config = SimConfig {
        horizon: horizon(&ordered),
        policy: Policy::FixedPriority,
        exec_scale_min_ppm: 1_000_000,
        seed,
        work_conserving: mode == SchedulerMode::WorkConserving,
        fault: FaultPlan::NONE,
        engine: Engine::Des,
        attribution: true,
        staging_window: 2,
    };
    let run = simulate(&ordered, &p, &config);
    let report = attribute(&run.trace).expect("conservation holds");
    for job in &report.jobs {
        let i = job.task.0;
        let b = bounds[i].expect("admitted implies converged");
        prop_assert!(
            job.response <= b.response,
            "task {} job {}: response {} > bound {} (mode {:?})",
            i,
            job.job,
            job.response,
            b.response,
            mode
        );
        // Time other jobs denied this one the CPU — preemption slices
        // plus gated dispatch wait — is budgeted by blocking +
        // higher-priority interference.
        let denied = job.preemption_total() + job.dispatch_wait;
        prop_assert!(
            denied <= b.blocking + b.interference,
            "task {} job {}: preemption {} + dispatch {} > B {} + I {} (mode {:?})",
            i,
            job.job,
            job.preemption_total(),
            job.dispatch_wait,
            b.blocking,
            b.interference,
            mode
        );
        // The job's own CPU share — compute plus contention stall —
        // is budgeted by its fully-inflated execution total.
        prop_assert!(
            job.compute + job.bus_contention <= exec_totals[i],
            "task {} job {}: compute {} + contention {} > Σe {} (mode {:?})",
            i,
            job.job,
            job.compute,
            job.bus_contention,
            exec_totals[i],
            mode
        );
        // No faults were injected, so no re-fetch blame may appear.
        prop_assert_eq!(job.fault_refetch, Cycles::ZERO);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(24),
        ..ProptestConfig::default()
    })]

    /// Layer 1: the six-term decomposition conserves response time
    /// exactly — both engines, both disciplines, jittered execution,
    /// fault injection, every miss policy, overload included.
    #[test]
    fn decomposition_conserves_response_exactly(
        seed in 0u64..100_000,
        n_tasks in 1usize..6,
        util_pct in 5u64..95,
        wc in proptest::bool::ANY,
        engine_des in proptest::bool::ANY,
        scale in 300_000u64..=1_000_000,
        fault_rate_sel in 0u64..=1_000_000,
        miss_sel in 0u8..3,
    ) {
        let fault_rate_ppm = if fault_rate_sel < 200_000 { 0 } else { fault_rate_sel };
        let params = TasksetParams::baseline(n_tasks, util_pct * 10_000);
        let miss_policy = [
            MissPolicy::Continue,
            MissPolicy::Abort,
            MissPolicy::SkipNextRelease,
        ][miss_sel as usize];
        let ts = with_miss_policy(&generate(&params, &platform(), seed), miss_policy);
        let config = SimConfig {
            horizon: ts.tasks().iter().map(|t| t.period).max().unwrap() * 3,
            policy: Policy::FixedPriority,
            exec_scale_min_ppm: scale,
            seed,
            work_conserving: wc,
            fault: FaultPlan {
                seed,
                dma_fault_rate_ppm: fault_rate_ppm,
                max_retries: 3,
                jitter_max_cycles: 50,
            },
            engine: if engine_des { Engine::Des } else { Engine::Legacy },
            attribution: true,
            staging_window: 2,
        };
        let run = simulate(&ts, &platform(), &config);
        let report = match attribute(&run.trace) {
            Ok(r) => r,
            Err(e) => {
                return Err(TestCaseError::Fail(format!(
                    "conservation violated: {e}"
                )))
            }
        };
        // One decomposition per completed job, nothing dropped.
        let completions: u64 = run.stats.iter().map(|s| s.completions).sum();
        prop_assert_eq!(report.jobs.len() as u64, completions);
        for job in &report.jobs {
            prop_assert_eq!(job.total(), job.response, "task {} job {}", job.task, job.job);
        }
        // Aggregates are sums of the per-job terms.
        let misses: u64 = report.tasks.values().map(|t| t.misses).sum();
        prop_assert_eq!(misses, report.jobs.iter().filter(|j| j.missed).count() as u64);
    }

    /// Layer 2 under the gated dispatcher.
    #[test]
    fn gated_blame_terms_stay_within_rta_budgets(
        seed in 0u64..100_000,
        n_tasks in 2usize..6,
        util_pct in 10u64..70,
        fetch_ratio_pct in 5u64..120,
    ) {
        let mut params = TasksetParams::baseline(n_tasks, util_pct * 10_000);
        params.fetch_compute_ratio_ppm = fetch_ratio_pct * 10_000;
        let ts = generate(&params, &platform(), seed);
        check_measured_within_bounds(&ts, SchedulerMode::Gated, seed)?;
    }

    /// Layer 2 under the work-conserving dispatcher.
    #[test]
    fn work_conserving_blame_terms_stay_within_rta_budgets(
        seed in 0u64..100_000,
        n_tasks in 2usize..6,
        util_pct in 10u64..70,
    ) {
        let params = TasksetParams::baseline(n_tasks, util_pct * 10_000);
        let ts = generate(&params, &platform(), seed);
        check_measured_within_bounds(&ts, SchedulerMode::WorkConserving, seed)?;
    }
}

/// Layer 3a: a high-priority task firing inside a lower-priority job's
/// window must show up in that job's `preemption_by` ledger — and as
/// its dominant interference source.
#[test]
fn preemption_blame_names_the_preempting_task() {
    let hp = SporadicTask::new(
        "hp",
        cy(100_000),
        cy(100_000),
        vec![Segment::new(cy(10_000), 0)],
        StagingMode::Resident,
    )
    .expect("valid");
    let lp = SporadicTask::new(
        "lp",
        cy(1_000_000),
        cy(1_000_000),
        vec![Segment::new(cy(300_000), 0), Segment::new(cy(300_000), 0)],
        StagingMode::Resident,
    )
    .expect("valid");
    let ts = TaskSet::from_tasks(vec![hp, lp]);
    let config = SimConfig {
        horizon: cy(1_000_000),
        policy: Policy::FixedPriority,
        exec_scale_min_ppm: 1_000_000,
        seed: 0,
        work_conserving: false,
        fault: FaultPlan::NONE,
        engine: Engine::Des,
        attribution: true,
        staging_window: 2,
    };
    let run = simulate(&ts, &platform(), &config);
    let report = attribute(&run.trace).expect("conservation holds");

    let lp_job = report
        .jobs
        .iter()
        .find(|j| j.task == TaskId(1))
        .expect("lp completes a job");
    let stolen = lp_job
        .preemption_by
        .get(&TaskId(0))
        .copied()
        .unwrap_or(Cycles::ZERO);
    assert!(
        stolen > Cycles::ZERO,
        "hp releases inside lp's window must register as preemption: {lp_job:?}"
    );
    let (source, _) = lp_job.dominant_interference().expect("interference exists");
    assert_eq!(source, BlameSource::Preemption, "{lp_job:?}");

    // The converse causal direction: a later hp job released while an
    // lp segment is in flight is blocked by it (non-preemptive
    // segments), which the decomposition also files under preemption —
    // this time charged to lp.
    let blocked_hp = report.jobs.iter().filter(|j| j.task == TaskId(0)).any(|j| {
        j.preemption_by
            .get(&TaskId(1))
            .copied()
            .unwrap_or(Cycles::ZERO)
            > Cycles::ZERO
    });
    assert!(
        blocked_hp,
        "some hp job must be blocked by an in-flight lp segment"
    );
}

/// Layer 3b: injected DMA faults on a blocking lead-in fetch must show
/// up as nonzero `fault_refetch` blame.
#[test]
fn fault_refetch_blame_fires_under_injected_faults() {
    let t = SporadicTask::new(
        "f",
        cy(1_000_000),
        cy(1_000_000),
        vec![
            Segment::new(cy(50_000), 32_768),
            Segment::new(cy(50_000), 32_768),
        ],
        StagingMode::Overlapped,
    )
    .expect("valid");
    let ts = TaskSet::from_tasks(vec![t]);
    let config = SimConfig {
        horizon: cy(8_000_000),
        policy: Policy::FixedPriority,
        exec_scale_min_ppm: 1_000_000,
        seed: 7,
        work_conserving: false,
        fault: FaultPlan {
            seed: 7,
            dma_fault_rate_ppm: 900_000,
            max_retries: 5,
            jitter_max_cycles: 0,
        },
        engine: Engine::Des,
        attribution: true,
        staging_window: 2,
    };
    let run = simulate(&ts, &platform(), &config);
    assert!(
        run.metrics.injected_faults > 0,
        "fixture must actually fault"
    );
    let report = attribute(&run.trace).expect("conservation holds");
    let refetch: Cycles = report.jobs.iter().map(|j| j.fault_refetch).sum();
    assert!(
        refetch > Cycles::ZERO,
        "faulted lead-in fetches must be blamed as fault-refetch: {report:?}"
    );
    // Without faults the same scenario has zero re-fetch blame.
    let mut clean_cfg = config;
    clean_cfg.fault = FaultPlan::NONE;
    let clean = attribute(&simulate(&ts, &platform(), &clean_cfg).trace).expect("conservation");
    assert!(clean.jobs.iter().all(|j| j.fault_refetch == Cycles::ZERO));
}
