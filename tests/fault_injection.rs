//! End-to-end guarantees of the fault-injection layer through the
//! framework stack (core → sched → mcusim → obs):
//!
//! - a zero-rate fault plan is provably free: runs and exports are
//!   byte-identical with and without the plan configured;
//! - a fixed nonzero seed/rate is reproducible run-to-run, and the
//!   injected faults are visible in the Chrome trace export;
//! - the deadline-miss policies change the runtime's behaviour under
//!   overload and surface in both metrics and the export.

use rt_mdm::core::{FrameworkOptions, RtMdm, TaskSpec};
use rt_mdm::dnn::zoo;
use rt_mdm::mcusim::{FaultPlan, PlatformConfig};
use rt_mdm::obs::chrome_trace_json;
use rt_mdm::sched::MissPolicy;

fn framework(options: FrameworkOptions) -> RtMdm {
    let mut f = RtMdm::with_options(PlatformConfig::stm32f746_qspi(), options).expect("platform");
    f.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))
        .expect("kws");
    f.add_task(TaskSpec::new("ic", zoo::resnet8(), 400_000, 400_000))
        .expect("ic");
    f
}

#[test]
fn zero_rate_plan_is_byte_identical_through_the_framework() {
    let plain = framework(FrameworkOptions::default());
    let idle = framework(FrameworkOptions {
        fault: FaultPlan {
            seed: 99,
            dma_fault_rate_ppm: 0,
            max_retries: 7,
            jitter_max_cycles: 0,
        },
        ..FrameworkOptions::default()
    });
    let a = plain.simulate(1_000_000).expect("simulate");
    let b = idle.simulate(1_000_000).expect("simulate");
    assert_eq!(a.result.trace.events(), b.result.trace.events());
    assert_eq!(a.result.stats, b.result.stats);
    assert_eq!(a.result.metrics, b.result.metrics);
    assert_eq!(a.to_table(), b.to_table());
    assert_eq!(
        chrome_trace_json(&a.result.trace, &a.names),
        chrome_trace_json(&b.result.trace, &b.names)
    );
    assert_eq!(a.result.metrics.injected_faults, 0);
}

#[test]
fn seeded_faults_are_reproducible_and_exported() {
    let f = framework(FrameworkOptions {
        fault: FaultPlan {
            seed: 42,
            dma_fault_rate_ppm: 300_000,
            max_retries: 3,
            jitter_max_cycles: 25,
        },
        ..FrameworkOptions::default()
    });
    let a = f.simulate(1_000_000).expect("simulate");
    let b = f.simulate(1_000_000).expect("simulate");
    assert_eq!(a.result.trace.events(), b.result.trace.events());
    assert_eq!(a.result.metrics, b.result.metrics);
    assert!(a.result.metrics.injected_faults > 0, "faults must fire");
    assert_eq!(
        a.result.metrics.fetch_retries,
        a.result.metrics.injected_faults
    );
    let json = chrome_trace_json(&a.result.trace, &a.names);
    assert!(
        json.contains("\"cat\":\"fault\""),
        "injected faults must be visible in the Chrome export"
    );
    assert_eq!(
        a.result.trace.injected_faults() as u64,
        a.result.metrics.injected_faults
    );
}

/// An overloaded spec: the autoencoder is fetch-dominated on QSPI and
/// cannot meet a 4 ms period, so every policy has misses to act on.
fn overloaded(policy: MissPolicy) -> RtMdm {
    let mut f = RtMdm::with_options(
        PlatformConfig::stm32f746_qspi(),
        FrameworkOptions {
            miss_policy: policy,
            ..FrameworkOptions::default()
        },
    )
    .expect("platform");
    f.add_task(TaskSpec::new("ae", zoo::autoencoder(), 4_000, 4_000))
        .expect("ae");
    f
}

#[test]
fn abort_policy_reclaims_overload_and_is_exported() {
    let run = overloaded(MissPolicy::Abort)
        .simulate(100_000)
        .expect("simulate");
    assert!(run.deadline_misses() > 0, "workload must overload");
    assert!(run.result.metrics.aborted_jobs > 0);
    let json = chrome_trace_json(&run.result.trace, &run.names);
    assert!(json.contains("\"cat\":\"abort\""));
}

#[test]
fn skip_next_policy_sheds_and_is_exported() {
    let run = overloaded(MissPolicy::SkipNextRelease)
        .simulate(100_000)
        .expect("simulate");
    assert!(run.deadline_misses() > 0, "workload must overload");
    assert!(run.result.metrics.shed_jobs > 0);
    let json = chrome_trace_json(&run.result.trace, &run.names);
    assert!(json.contains("\"cat\":\"shed\""));
}

#[test]
fn continue_policy_matches_the_default_byte_for_byte() {
    let a = overloaded(MissPolicy::Continue)
        .simulate(100_000)
        .expect("simulate");
    let b = RtMdm::new(PlatformConfig::stm32f746_qspi())
        .and_then(|mut f| {
            f.add_task(TaskSpec::new("ae", zoo::autoencoder(), 4_000, 4_000))?;
            f.simulate(100_000)
        })
        .expect("simulate");
    assert_eq!(a.result.trace.events(), b.result.trace.events());
    assert_eq!(a.result.stats, b.result.stats);
    assert_eq!(a.result.metrics, b.result.metrics);
}
