//! End-to-end integration tests: the full RT-MDM pipeline — models →
//! segmentation → admission → simulation — across platforms, strategies,
//! and workload mixes.

use rt_mdm::core::{FrameworkOptions, RtMdm, Strategy, TaskSpec};
use rt_mdm::dnn::zoo;
use rt_mdm::mcusim::PlatformConfig;

fn two_dnn_mix(platform: PlatformConfig) -> RtMdm {
    let mut fw = RtMdm::new(platform).expect("platform");
    fw.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))
        .expect("kws");
    fw.add_task(TaskSpec::new("ic", zoo::resnet8(), 400_000, 400_000))
        .expect("ic");
    fw
}

#[test]
fn admitted_sets_run_clean_on_every_preset() {
    for platform in [
        PlatformConfig::stm32f746_qspi(),
        PlatformConfig::stm32h743_ospi(),
        PlatformConfig::ideal_sram(),
    ] {
        let name = platform.name.clone();
        let fw = two_dnn_mix(platform);
        let admission = fw.admit().expect("admission runs");
        if admission.schedulable() {
            let run = fw.simulate(4_000_000).expect("simulation runs");
            assert_eq!(run.deadline_misses(), 0, "{name}: admitted set missed");
        }
    }
}

#[test]
fn analysis_bound_dominates_observed_responses() {
    let fw = two_dnn_mix(PlatformConfig::stm32f746_qspi());
    let admission = fw.admit().expect("admit");
    assert!(admission.schedulable());
    let run = fw.simulate(8_000_000).expect("simulate");
    for (p, name) in admission.names.iter().enumerate() {
        let bound = admission.analysis.response_of(p).expect("converged");
        let observed = run.max_response_of(name).expect("observed");
        assert!(
            bound >= observed,
            "{name}: bound {bound} < observed {observed}"
        );
    }
}

#[test]
fn three_dnn_sensor_node_on_h743() {
    let mut fw = RtMdm::new(PlatformConfig::stm32h743_ospi()).expect("platform");
    fw.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))
        .expect("kws");
    fw.add_task(TaskSpec::new(
        "vww",
        zoo::mobilenet_v1_025(),
        400_000,
        400_000,
    ))
    .expect("vww");
    fw.add_task(TaskSpec::new(
        "anomaly",
        zoo::autoencoder(),
        300_000,
        300_000,
    ))
    .expect("anomaly");
    let admission = fw.admit().expect("admit");
    assert!(admission.schedulable(), "{}", admission.to_table());
    let run = fw.simulate(3_000_000).expect("simulate");
    assert_eq!(run.deadline_misses(), 0);
    // Every task actually ran.
    for stats in &run.result.stats {
        assert!(stats.completions > 0);
    }
}

#[test]
fn strategy_latency_ordering_holds_end_to_end() {
    // Same single task under the three strategies: resident ≤ rt-mdm ≤
    // fetch-then-compute ≤ whole-dnn-with-staging (whole-dnn equals
    // fetch-then-compute in isolation since there is no one to preempt).
    let mut responses = Vec::new();
    for strategy in [
        Strategy::AllInSram,
        Strategy::RtMdm,
        Strategy::FetchThenCompute,
    ] {
        let mut fw = RtMdm::new(PlatformConfig::stm32f746_qspi()).expect("platform");
        fw.add_task(TaskSpec::new("ic", zoo::resnet8(), 400_000, 400_000).with_strategy(strategy))
            .expect("add");
        let run = fw.simulate(2_000_000).expect("simulate");
        responses.push((strategy, run.max_response_of("ic").expect("ran")));
    }
    assert!(
        responses[0].1 <= responses[1].1,
        "resident {} > rt-mdm {}",
        responses[0].1,
        responses[1].1
    );
    assert!(
        responses[1].1 <= responses[2].1,
        "rt-mdm {} > fetch-then-compute {}",
        responses[1].1,
        responses[2].1
    );
}

#[test]
fn rt_mdm_admits_what_whole_dnn_cannot() {
    // The headline claim, end to end: a mix that whole-DNN
    // run-to-completion cannot guarantee, RT-MDM can.
    let build = |strategy: Option<Strategy>| {
        let options = FrameworkOptions {
            force_strategy: strategy,
            ..FrameworkOptions::default()
        };
        let mut fw =
            RtMdm::with_options(PlatformConfig::stm32f746_qspi(), options).expect("platform");
        // Tight-deadline micro task + a heavyweight DNN: the blocking of
        // a whole resnet8 (≈80 ms fetch+compute) breaks a 25 ms deadline.
        // (25 ms, not less: resnet8 contains an indivisible 15.3 ms
        // layer, which floors the non-preemptive blocking even under
        // RT-MDM's segmentation — layer tiling is future work.)
        fw.add_task(TaskSpec::new("control", zoo::micro_mlp(), 25_000, 25_000))
            .expect("control");
        fw.add_task(TaskSpec::new("ic", zoo::resnet8(), 400_000, 400_000))
            .expect("ic");
        fw
    };
    let rtmdm = build(None).admit().expect("admit");
    assert!(rtmdm.schedulable(), "{}", rtmdm.to_table());

    let whole = build(Some(Strategy::WholeDnn)).admit().expect("admit");
    assert!(!whole.schedulable(), "{}", whole.to_table());

    // And the analysis is not crying wolf: simulation of the whole-DNN
    // variant actually misses deadlines.
    let run = build(Some(Strategy::WholeDnn))
        .simulate(4_000_000)
        .expect("simulate");
    assert!(run.deadline_misses() > 0);
}

#[test]
fn memory_oblivious_admission_misses_in_simulation() {
    // Baseline B4 end to end: the memory-oblivious analysis admits a
    // staging-bound set which then misses deadlines on the platform.
    let options = FrameworkOptions {
        dma_aware_analysis: false,
        ..FrameworkOptions::default()
    };
    let mut fw = RtMdm::with_options(PlatformConfig::stm32f746_qspi(), options).expect("platform");
    fw.add_task(TaskSpec::new("ae", zoo::autoencoder(), 4_000, 4_000))
        .expect("add");
    let admission = fw.admit().expect("admit");
    assert!(admission.schedulable(), "oblivious analysis admits");
    let run = fw.simulate(1_000_000).expect("simulate");
    assert!(run.deadline_misses() > 0, "…and the platform misses");
}

#[test]
fn edf_policy_runs_the_same_mix() {
    let options = FrameworkOptions {
        policy: rt_mdm::sched::sim::Policy::Edf,
        ..FrameworkOptions::default()
    };
    let mut fw = RtMdm::with_options(PlatformConfig::stm32f746_qspi(), options).expect("platform");
    fw.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))
        .expect("kws");
    fw.add_task(TaskSpec::new("ic", zoo::resnet8(), 400_000, 400_000))
        .expect("ic");
    let run = fw.simulate(2_000_000).expect("simulate");
    assert_eq!(run.deadline_misses(), 0);
}

#[test]
fn functional_inference_still_works_through_the_stack() {
    // The framework schedules *real* models; verify the models compute.
    use rt_mdm::dnn::{QuantParams, Tensor};
    for model in [zoo::ds_cnn(), zoo::resnet8()] {
        let mut input = Tensor::filled_pattern(model.input_shape(), 0x5EED);
        input.set_quant(QuantParams::symmetric(0.1));
        let out = model.infer(&input).expect("inference");
        assert_eq!(out.shape(), model.output_shape());
    }
}
