//! Cross-validation of the static verifier against the simulator.
//!
//! Two directions:
//!
//! 1. **Clean implies disciplined** — any system spec whose
//!    [`SystemSpec::check`] report is clean simulates without ever
//!    violating the staging discipline in the trace: a segment's fetch
//!    completes before its compute starts, and the fetch of group `g`
//!    never starts before the compute of group `g − 2` has retired its
//!    double-buffer half (the two-ahead window). Exercised over random
//!    model × period specs via proptest.
//!
//! 2. **Detected implies observable** — a staging race the verifier
//!    reports statically (`RTM002`) is reproducible as a temporal
//!    overlap between the offending DMA-write slice and the CPU-read
//!    slice in an [`rtmdm-obs` timeline](rt_mdm::obs::Timeline) built
//!    from the race's windows.

use std::collections::BTreeMap;

use proptest::prelude::*;

use rt_mdm::check::{check_staging, staging_races, Rule};
use rt_mdm::core::{RtMdm, SystemSpec, TaskSpec};
use rt_mdm::dnn::zoo;
use rt_mdm::mcusim::{Cycles, JobId, PlatformConfig, SegmentId, TaskId, Trace, TraceKind};
use rt_mdm::obs::Timeline;
use rt_mdm::xmem::{ModelSegmentation, SegmentPlan};

fn platform() -> PlatformConfig {
    PlatformConfig::stm32f746_qspi()
}

/// Per-(task, job) staging observations extracted from a trace.
#[derive(Default)]
struct JobStaging {
    /// `segment -> fetch start time`.
    fetch_start: BTreeMap<usize, Cycles>,
    /// `segment -> fetch completion time`.
    fetch_done: BTreeMap<usize, Cycles>,
    /// `segment -> compute start time`.
    seg_start: BTreeMap<usize, Cycles>,
    /// `segment -> compute completion time`.
    seg_done: BTreeMap<usize, Cycles>,
}

fn collect(trace: &Trace) -> BTreeMap<(TaskId, JobId), JobStaging> {
    let mut jobs: BTreeMap<(TaskId, JobId), JobStaging> = BTreeMap::new();
    for e in trace.events() {
        match e.kind {
            TraceKind::FetchStarted {
                task, job, segment, ..
            } => {
                jobs.entry((task, job))
                    .or_default()
                    .fetch_start
                    .insert(segment.0, e.time);
            }
            TraceKind::FetchCompleted { task, job, segment } => {
                jobs.entry((task, job))
                    .or_default()
                    .fetch_done
                    .insert(segment.0, e.time);
            }
            TraceKind::SegmentStarted { task, job, segment } => {
                jobs.entry((task, job))
                    .or_default()
                    .seg_start
                    .insert(segment.0, e.time);
            }
            TraceKind::SegmentCompleted { task, job, segment } => {
                jobs.entry((task, job))
                    .or_default()
                    .seg_done
                    .insert(segment.0, e.time);
            }
            _ => {}
        }
    }
    jobs
}

/// Asserts the staging discipline over one job's observations.
///
/// Incomplete pairs (the horizon cut a fetch or segment open) are
/// skipped: the invariants constrain events that happened, not events
/// the trace never recorded.
fn assert_job_staging(key: (TaskId, JobId), job: &JobStaging) -> Result<(), TestCaseError> {
    // Fetch-before-compute, per segment.
    for (&seg, &done) in &job.fetch_done {
        if let Some(&start) = job.seg_start.get(&seg) {
            prop_assert!(
                done <= start,
                "{:?}: segment {} started at {} before its fetch completed at {}",
                key,
                seg,
                start,
                done
            );
        }
    }
    // Two-ahead window: group g's fetch waits for group g-2's computes.
    // Groups are the fetch-bearing segments; group g covers segments
    // [fs[g], fs[g+1]).
    let fs: Vec<usize> = job.fetch_start.keys().copied().collect();
    for g in 2..fs.len() {
        let Some(&fetch_at) = job.fetch_start.get(&fs[g]) else {
            continue;
        };
        let retired = (fs[g - 2]..fs[g - 1])
            .filter_map(|s| job.seg_done.get(&s))
            .max();
        if let Some(&retired) = retired {
            prop_assert!(
                fetch_at >= retired,
                "{:?}: fetch of group {} (segment {}) at {} precedes retirement of \
                 group {} at {}",
                key,
                g,
                fs[g],
                fetch_at,
                g - 2,
                retired
            );
        }
    }
    Ok(())
}

/// Direction 1: a check-clean spec never trips the staging invariants
/// in simulation.
fn check_clean_simulates_clean(
    specs: &[(usize, u64)],
    horizon_us: u64,
) -> Result<(), TestCaseError> {
    let models: &[fn() -> rt_mdm::dnn::Model] =
        &[zoo::micro_mlp, zoo::ds_cnn, zoo::lenet5, zoo::resnet8];
    let mut spec = SystemSpec::new(platform());
    for (i, &(model, period_ms)) in specs.iter().enumerate() {
        let build = models[model % models.len()];
        let us = period_ms * 1_000;
        spec.push(TaskSpec::new(format!("t{i}"), build(), us, us));
    }
    if !spec.check().is_clean() {
        return Ok(()); // the property only claims anything for clean specs
    }

    let mut fw = RtMdm::new(spec.platform.clone()).expect("checked platform is valid");
    for task in &spec.tasks {
        fw.add_task(task.clone())
            .expect("check-clean specs pass eager validation");
    }
    let run = fw.simulate(horizon_us).expect("check-clean specs simulate");
    for (key, job) in collect(&run.result.trace) {
        assert_job_staging(key, &job)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(24),
        ..ProptestConfig::default()
    })]

    #[test]
    fn clean_specs_respect_staging_discipline_in_simulation(
        model in 0usize..4,
        period_ms in 40u64..400,
    ) {
        check_clean_simulates_clean(&[(model, period_ms)], 2 * period_ms * 1_000)?;
    }

    #[test]
    fn clean_pairs_respect_staging_discipline_in_simulation(
        a in 0usize..4,
        b in 0usize..4,
        pa in 50u64..250,
        pb in 250u64..1000,
    ) {
        check_clean_simulates_clean(&[(a, pa), (b, pb)], 2 * pb * 1_000)?;
    }
}

/// The known-broken plan from the verifier's own test bed: segment 2's
/// fetch overruns its half and spills into the half segment 1 still
/// reads.
fn broken_plan() -> ModelSegmentation {
    let seg = |index, fetch_bytes| SegmentPlan {
        index,
        first_layer: index,
        last_layer: index,
        fetch_bytes,
        compute_cycles: Cycles::new(100_000),
    };
    ModelSegmentation {
        model: "synthetic".to_owned(),
        buffer_bytes: 1024,
        segments: vec![seg(0, 512), seg(1, 512), seg(2, 1536)],
    }
}

/// Direction 2: a statically detected race materializes as overlapping
/// fetch/compute slices in the observability timeline.
#[test]
fn detected_race_is_an_observable_timeline_overlap() {
    let plan = broken_plan();
    let p = platform();

    let races = staging_races(&plan, &p);
    assert!(!races.is_empty(), "fixture must race");
    assert!(
        check_staging(&plan, &p)
            .iter()
            .any(|f| f.rule == Rule::Rtm002),
        "the race must surface as RTM002"
    );

    // Realize the race's static windows as a trace and rebuild them
    // through the timeline analytics: the DMA-write slice and the
    // CPU-read slice must overlap in time, exactly as the verifier
    // claimed.
    let (task, job) = (TaskId(0), JobId(0));
    let mut horizon = Cycles::ZERO;
    let mut events: Vec<(u64, TraceKind)> = Vec::new();
    for race in &races {
        let (f0, f1) = race.write_window;
        let (c0, c1) = race.read_window;
        let segment = SegmentId(race.write_segment);
        let bytes = plan.segments[race.write_segment].fetch_bytes;
        events.push((
            f0,
            TraceKind::FetchStarted {
                task,
                job,
                segment,
                bytes,
            },
        ));
        events.push((f1, TraceKind::FetchCompleted { task, job, segment }));
        let segment = SegmentId(race.read_segment);
        events.push((c0, TraceKind::SegmentStarted { task, job, segment }));
        events.push((c1, TraceKind::SegmentCompleted { task, job, segment }));
        horizon = horizon.max(Cycles::new(f1.max(c1)));
    }
    // Overlapping windows interleave, and the trace requires
    // nondecreasing timestamps.
    events.sort_by_key(|&(t, _)| t);
    let mut trace = Trace::new();
    for (t, kind) in events {
        trace.push(Cycles::new(t), kind);
    }

    let timeline = Timeline::from_trace(&trace, horizon);
    for race in &races {
        let fetch = timeline
            .fetches()
            .iter()
            .find(|f| f.segment.0 == race.write_segment)
            .expect("write slice present");
        let read = timeline
            .segments()
            .iter()
            .find(|s| s.segment.0 == race.read_segment)
            .expect("read slice present");
        assert!(
            fetch.start < read.end && read.start < fetch.end,
            "race {race:?} did not overlap in the timeline: fetch {}..{}, read {}..{}",
            fetch.start,
            fetch.end,
            read.start,
            read.end
        );
    }
    // The overlap also registers in the aggregate CPU/DMA concurrency.
    assert!(timeline.overlap_cycles() > Cycles::ZERO);
}

/// A clean plan's static pipeline yields no races, and the same clean
/// schedule realized as a trace keeps fetch and the *dependent* compute
/// disjoint per segment — the verifier and the analytics agree on what
/// "disciplined" means.
#[test]
fn clean_plan_has_no_races_and_check_staging_is_silent() {
    let plan = rt_mdm::xmem::segment_model(
        &zoo::ds_cnn(),
        &rt_mdm::dnn::CostModel::cmsis_nn_m7(),
        8 * 1024,
    )
    .expect("plan");
    assert!(plan.segments.len() >= 2, "fixture must be multi-segment");
    let p = platform();
    assert!(staging_races(&plan, &p).is_empty());
    assert!(check_staging(&plan, &p).is_empty());
}
