//! The central correctness property of the whole reproduction:
//!
//! > If the RT-MDM schedulability analysis admits a task set, the
//! > simulator never observes a deadline miss — and every analytical
//! > response-time bound dominates every observed response time —
//! > under worst-case and under jittered execution, under the gated and
//! > the work-conserving dispatcher alike.
//!
//! Exercised over thousands of randomly generated task sets via
//! proptest, plus directed edge cases.

use proptest::prelude::*;

use rt_mdm::mcusim::{Cycles, FaultPlan, PlatformConfig};
use rt_mdm::sched::analysis::{rta_limited_preemption_with, SchedulerMode};
use rt_mdm::sched::assign::dm_order;
use rt_mdm::sched::gen::{generate, TasksetParams};
use rt_mdm::sched::sim::{simulate, Engine, Policy, SimConfig};
use rt_mdm::sched::{StagingMode, TaskSet};

fn platform() -> PlatformConfig {
    PlatformConfig::stm32f746_qspi()
}

/// Simulation horizon: enough releases of every task to expose worst
/// alignments (4 × the longest period, but at least 8 of the shortest).
fn horizon(ts: &TaskSet) -> Cycles {
    let max_t = ts.tasks().iter().map(|t| t.period).max().unwrap();
    let min_t = ts.tasks().iter().map(|t| t.period).min().unwrap();
    (max_t * 4).max(min_t * 8)
}

fn check_soundness(
    ts: &TaskSet,
    mode: SchedulerMode,
    exec_scale_min_ppm: u64,
    seed: u64,
) -> Result<(), TestCaseError> {
    let p = platform();
    let ordered = ts.reordered(&dm_order(ts));
    let outcome = rta_limited_preemption_with(&ordered, &p, mode);
    if !outcome.schedulable {
        return Ok(()); // nothing claimed, nothing to check
    }
    let config = SimConfig {
        horizon: horizon(&ordered),
        policy: Policy::FixedPriority,
        exec_scale_min_ppm,
        seed,
        work_conserving: mode == SchedulerMode::WorkConserving,
        fault: FaultPlan::NONE,
        engine: Engine::Des,
        attribution: false,
        staging_window: 2,
    };
    let run = simulate(&ordered, &p, &config);
    prop_assert_eq!(
        run.total_misses(),
        0,
        "admitted set missed a deadline (mode {:?})",
        mode
    );
    for i in 0..ordered.len() {
        let bound = outcome.response_of(i).expect("admitted implies converged");
        let observed = run.max_response_of(i);
        prop_assert!(
            bound >= observed,
            "task {} bound {} < observed {} (mode {:?})",
            i,
            bound,
            observed,
            mode
        );
    }
    Ok(())
}

proptest! {
    // Default 160 cases per property; override with PROPTEST_CASES.
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(160),
        .. ProptestConfig::default()
    })]

    /// Gated dispatcher, WCET execution.
    #[test]
    fn gated_admission_is_sound_at_wcet(
        seed in 0u64..100_000,
        n_tasks in 2usize..7,
        util_pct in 10u64..75,
        fetch_ratio_pct in 5u64..120,
        constrained in proptest::bool::ANY,
    ) {
        let mut params = TasksetParams::baseline(n_tasks, util_pct * 10_000);
        params.fetch_compute_ratio_ppm = fetch_ratio_pct * 10_000;
        if constrained {
            params.deadline_factor_range_ppm = (600_000, 1_000_000);
        }
        let ts = generate(&params, &platform(), seed);
        check_soundness(&ts, SchedulerMode::Gated, 1_000_000, seed)?;
    }

    /// Gated dispatcher, jittered execution times (early completions
    /// must not break the guarantee).
    #[test]
    fn gated_admission_is_sound_under_jitter(
        seed in 0u64..100_000,
        n_tasks in 2usize..6,
        util_pct in 10u64..70,
        scale_min in 300_000u64..1_000_000,
    ) {
        let params = TasksetParams::baseline(n_tasks, util_pct * 10_000);
        let ts = generate(&params, &platform(), seed);
        check_soundness(&ts, SchedulerMode::Gated, scale_min, seed)?;
    }

    /// Work-conserving dispatcher with its matching analysis.
    #[test]
    fn work_conserving_admission_is_sound(
        seed in 0u64..100_000,
        n_tasks in 2usize..6,
        util_pct in 10u64..70,
        fetch_ratio_pct in 5u64..100,
    ) {
        let mut params = TasksetParams::baseline(n_tasks, util_pct * 10_000);
        params.fetch_compute_ratio_ppm = fetch_ratio_pct * 10_000;
        let ts = generate(&params, &platform(), seed);
        check_soundness(&ts, SchedulerMode::WorkConserving, 1_000_000, seed)?;
    }

    /// Resident-only sets reduce to classic limited-preemption FP: the
    /// same property must hold there too.
    #[test]
    fn resident_admission_is_sound(
        seed in 0u64..100_000,
        n_tasks in 2usize..8,
        util_pct in 10u64..85,
    ) {
        let mut params = TasksetParams::baseline(n_tasks, util_pct * 10_000);
        params.mode = StagingMode::Resident;
        params.fetch_compute_ratio_ppm = 0;
        let ts = generate(&params, &platform(), seed);
        check_soundness(&ts, SchedulerMode::Gated, 1_000_000, seed)?;
    }
}

/// Directed stress: many seeds across the utilization range where the
/// analysis admits, both modes. Asserts non-vacuity.
#[test]
fn directed_soundness_sweep() {
    let p = platform();
    let mut admitted = 0u32;
    for seed in 0..900u64 {
        let util_ppm = 100_000 + (seed % 6) * 80_000; // 10%..50%
        let params = TasksetParams::baseline(4, util_ppm);
        let ts = generate(&params, &p, seed);
        for mode in [SchedulerMode::Gated, SchedulerMode::WorkConserving] {
            let ordered = ts.reordered(&dm_order(&ts));
            let outcome = rta_limited_preemption_with(&ordered, &p, mode);
            if !outcome.schedulable {
                continue;
            }
            admitted += 1;
            let config = SimConfig {
                horizon: horizon(&ordered),
                policy: Policy::FixedPriority,
                exec_scale_min_ppm: 1_000_000,
                seed,
                work_conserving: mode == SchedulerMode::WorkConserving,
                fault: FaultPlan::NONE,
                engine: Engine::Des,
                attribution: false,
                staging_window: 2,
            };
            let run = simulate(&ordered, &p, &config);
            assert_eq!(run.total_misses(), 0, "seed {seed} mode {mode:?}");
        }
    }
    // The sweep must actually exercise admitted sets to mean anything.
    assert!(
        admitted > 300,
        "only {admitted} admitted sets — sweep too weak"
    );
}
