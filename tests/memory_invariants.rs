//! Property tests on the external-memory machinery: segmentation
//! coverage, pipeline ordering, SRAM accounting, and whole-framework
//! determinism.

use proptest::prelude::*;

use rt_mdm::core::{RtMdm, TaskSpec};
use rt_mdm::dnn::{zoo, CostModel};
use rt_mdm::mcusim::{Cycles, PlatformConfig};
use rt_mdm::xmem::{pipeline, segment_model_capped, ExecutionStrategy, PlanError};

fn zoo_model(idx: usize) -> rt_mdm::dnn::Model {
    let all = zoo::all();
    all[idx % all.len()].clone()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Segmentation covers every layer exactly once, stays within the
    /// buffer, and conserves bytes and compute — for any model, buffer
    /// size, and compute cap.
    #[test]
    fn segmentation_invariants(
        model_idx in 0usize..6,
        buffer_kb in 1u64..256,
        cap_kcycles in proptest::option::of(50u64..50_000),
    ) {
        let model = zoo_model(model_idx);
        let cost = CostModel::cmsis_nn_m7();
        let cap = cap_kcycles.map(|k| Cycles::new(k * 1000));
        match segment_model_capped(&model, &cost, buffer_kb * 1024, cap) {
            Err(PlanError::LayerTooLarge { bytes, buffer_bytes, .. }) => {
                prop_assert!(bytes > buffer_bytes);
                prop_assert!(model.max_layer_weight_bytes() == bytes || bytes <= model.max_layer_weight_bytes());
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
            Ok(seg) => {
                // Coverage: consecutive, gapless, complete.
                let mut next = 0usize;
                for s in &seg.segments {
                    prop_assert_eq!(s.first_layer, next);
                    prop_assert!(s.last_layer >= s.first_layer);
                    prop_assert!(s.fetch_bytes <= buffer_kb * 1024);
                    next = s.last_layer + 1;
                }
                prop_assert_eq!(next, model.len());
                // Conservation.
                prop_assert_eq!(seg.total_fetch_bytes(), model.total_weight_bytes());
                prop_assert_eq!(seg.total_compute(), cost.model_cost(&model).total_compute);
            }
        }
    }

    /// Strategy ordering of isolated latencies holds for any model,
    /// buffer, and platform preset.
    #[test]
    fn pipeline_strategy_ordering(
        model_idx in 0usize..6,
        buffer_kb in 84u64..512, // large enough for every zoo model
        preset in 0usize..4,
    ) {
        let model = zoo_model(model_idx);
        let cost = CostModel::cmsis_nn_m7();
        let platform = PlatformConfig::presets()[preset].clone();
        let seg = segment_model_capped(&model, &cost, buffer_kb * 1024, None).expect("fits");
        let ideal = pipeline::isolated_latency(&seg, &platform, ExecutionStrategy::AllInSram);
        let rtmdm = pipeline::isolated_latency(&seg, &platform, ExecutionStrategy::OverlappedPrefetch);
        let naive = pipeline::isolated_latency(&seg, &platform, ExecutionStrategy::FetchThenCompute);
        prop_assert!(ideal <= rtmdm);
        prop_assert!(rtmdm <= naive);
        // Overlap can at best hide all staging beyond the lead-in.
        prop_assert!(rtmdm >= seg.total_compute());
    }

    /// Tighter compute caps never increase the maximum segment compute.
    #[test]
    fn compute_cap_is_monotone(
        model_idx in 0usize..6,
        cap_a in 100u64..20_000,
        cap_b in 100u64..20_000,
    ) {
        let model = zoo_model(model_idx);
        let cost = CostModel::cmsis_nn_m7();
        let (lo, hi) = if cap_a <= cap_b { (cap_a, cap_b) } else { (cap_b, cap_a) };
        let seg_lo = segment_model_capped(&model, &cost, 1 << 20, Some(Cycles::new(lo * 1000)))
            .expect("fits");
        let seg_hi = segment_model_capped(&model, &cost, 1 << 20, Some(Cycles::new(hi * 1000)))
            .expect("fits");
        prop_assert!(seg_lo.len() >= seg_hi.len());
        prop_assert!(seg_lo.max_segment_compute() <= seg_hi.max_segment_compute());
    }
}

#[test]
fn framework_runs_are_deterministic() {
    let build = || {
        let mut fw = RtMdm::new(PlatformConfig::stm32f746_qspi()).expect("platform");
        fw.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))
            .expect("kws");
        fw.add_task(TaskSpec::new("ic", zoo::resnet8(), 400_000, 400_000))
            .expect("ic");
        fw
    };
    let a = build().simulate_with(2_000_000, 700_000, 9).expect("run");
    let b = build().simulate_with(2_000_000, 700_000, 9).expect("run");
    assert_eq!(a.result.trace.events(), b.result.trace.events());
    assert_eq!(a.result.stats, b.result.stats);
    // A different seed changes the jittered run.
    let c = build().simulate_with(2_000_000, 700_000, 10).expect("run");
    assert_ne!(a.result.trace.events(), c.result.trace.events());
}

#[test]
fn admission_is_pure() {
    let mut fw = RtMdm::new(PlatformConfig::stm32f746_qspi()).expect("platform");
    fw.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))
        .expect("kws");
    let a = fw.admit().expect("admit");
    let b = fw.admit().expect("admit");
    assert_eq!(a.order, b.order);
    assert_eq!(a.analysis.response, b.analysis.response);
    assert_eq!(a.occupancy_ppm, b.occupancy_ppm);
}
