//! Rule-registry contract tests.
//!
//! Two guarantees, both enforced against the single source of truth in
//! `crates/check/src/diag.rs`:
//!
//! 1. **ID stability** — the golden list below is the published rule
//!    surface: stable IDs, default severities, and blocking behavior.
//!    Rule IDs are contractual (they appear in JSON reports and in
//!    `--allow`/`--deny`/`--explain` flags), so this list only ever
//!    grows; changing or removing an entry is a breaking change that
//!    must be made deliberately, here, in the same commit.
//!
//! 2. **Doc drift** — the README rule table is rendered from the
//!    registry and diffed cell-for-cell, so the docs cannot silently
//!    fall behind a new or reworded rule.

use rt_mdm::check::{Rule, Severity};

/// The published rule surface: `(id, default severity, blocks admission)`.
///
/// Append-only. A new rule lands here with its README row in the same
/// commit; nothing is ever renumbered or reused.
const GOLDEN: &[(&str, Severity, bool)] = &[
    ("RTM001", Severity::Error, true),
    ("RTM002", Severity::Error, true),
    ("RTM003", Severity::Error, true),
    ("RTM004", Severity::Error, true),
    ("RTM010", Severity::Error, true),
    ("RTM011", Severity::Error, true),
    ("RTM012", Severity::Error, true),
    ("RTM013", Severity::Error, true),
    ("RTM020", Severity::Error, true),
    ("RTM021", Severity::Error, true),
    ("RTM022", Severity::Warn, false),
    ("RTM023", Severity::Error, false),
    ("RTM024", Severity::Warn, false),
    ("RTM025", Severity::Warn, false),
    ("RTM026", Severity::Error, false),
    ("RTM030", Severity::Error, true),
    ("RTM031", Severity::Warn, false),
    ("RTM032", Severity::Error, true),
    ("RTM033", Severity::Warn, false),
    ("RTM040", Severity::Error, true),
    ("RTM041", Severity::Error, false),
    ("RTM050", Severity::Error, false),
    ("RTM051", Severity::Error, true),
    ("RTM052", Severity::Error, false),
    ("RTM053", Severity::Warn, false),
];

#[test]
fn rule_registry_matches_the_golden_list_exactly() {
    let actual: Vec<(&str, Severity, bool)> = Rule::ALL
        .iter()
        .map(|r| (r.id(), r.default_severity(), r.blocks_admission()))
        .collect();
    assert_eq!(
        actual, GOLDEN,
        "the rule registry diverged from the golden list; rule IDs, default \
         severities, and blocking behavior are contractual — if this change is \
         deliberate, update the golden list (append-only) and the README table"
    );
}

#[test]
fn rule_ids_are_sorted_and_unique() {
    let ids: Vec<&str> = Rule::ALL.iter().map(|r| r.id()).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(ids, sorted, "Rule::ALL must stay in sorted ID order");
}

#[test]
fn every_rule_round_trips_through_from_id_and_explains() {
    for &rule in Rule::ALL {
        assert_eq!(Rule::from_id(rule.id()), Some(rule));
        assert!(
            !rule.summary().is_empty(),
            "{rule} has no description for --explain"
        );
    }
}

/// Renders the README rule-table row of one rule, exactly as the
/// README is expected to contain it.
fn readme_row(rule: Rule) -> String {
    format!(
        "| {} | {} | {} | {} |",
        rule.id(),
        rule.default_severity(),
        if rule.blocks_admission() { "yes" } else { "no" },
        rule.summary()
    )
}

#[test]
fn readme_rule_table_matches_the_registry() {
    let readme_path = concat!(env!("CARGO_MANIFEST_DIR"), "/README.md");
    let readme = std::fs::read_to_string(readme_path).expect("README.md at the repo root");
    let documented: Vec<&str> = readme
        .lines()
        .map(str::trim)
        .filter(|l| l.starts_with("| RTM"))
        .collect();
    let rendered: Vec<String> = Rule::ALL.iter().map(|&r| readme_row(r)).collect();
    assert_eq!(
        documented.len(),
        rendered.len(),
        "README documents {} rules, the registry has {} — keep the table in \
         lockstep with crates/check/src/diag.rs",
        documented.len(),
        rendered.len()
    );
    for (doc, gen) in documented.iter().zip(&rendered) {
        assert_eq!(
            *doc, gen,
            "README rule row drifted from the registry (left: README, right: \
             rendered from diag.rs)"
        );
    }
}
