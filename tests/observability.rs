//! Observability guarantees of the framework:
//!
//! - the Chrome trace-event export of a small fixed-seed simulation is
//!   pinned byte-for-byte by a golden file (and round-trips through the
//!   bundled `serde_json`), so exporter drift is caught immediately;
//! - timeline analytics satisfy their accounting invariants — CPU busy
//!   and idle partition the horizon exactly, utilizations and the
//!   fetch/compute overlap ratio stay within `[0, 1]` — across random
//!   task sets, and agree with the counters the simulator itself
//!   collects.

use proptest::prelude::*;

use rt_mdm::mcusim::{Cycles, FaultPlan, PlatformConfig, TraceKind};
use rt_mdm::obs::{chrome_trace, chrome_trace_json, ChromeTrace, Timeline};
use rt_mdm::sched::gen::{generate, TasksetParams};
use rt_mdm::sched::sim::{simulate, Engine, Policy, SimConfig, SimResult};
use rt_mdm::sched::{Segment, SporadicTask, StagingMode, TaskSet};

fn cy(n: u64) -> Cycles {
    Cycles::new(n)
}

/// The fixed scenario behind the golden file: two tasks — a two-segment
/// overlapped DNN and a resident control loop — over a 4000-cycle
/// horizon at WCET, seed 0. Everything here is deterministic.
fn golden_scenario() -> (SimResult, Vec<String>) {
    golden_scenario_with(Engine::Des)
}

fn golden_scenario_with(engine: Engine) -> (SimResult, Vec<String>) {
    let dnn = SporadicTask::new(
        "dnn",
        cy(2000),
        cy(2000),
        vec![Segment::new(cy(300), 128), Segment::new(cy(200), 64)],
        StagingMode::Overlapped,
    )
    .expect("valid task");
    let ctrl = SporadicTask::new(
        "ctrl",
        cy(500),
        cy(500),
        vec![Segment::new(cy(50), 0)],
        StagingMode::Resident,
    )
    .expect("valid task");
    let ts = TaskSet::from_tasks(vec![ctrl, dnn]);
    let config = SimConfig {
        horizon: cy(4000),
        policy: Policy::FixedPriority,
        exec_scale_min_ppm: 1_000_000,
        seed: 0,
        work_conserving: false,
        fault: FaultPlan::NONE,
        engine,
        attribution: false,
        staging_window: 2,
    };
    let result = simulate(&ts, &PlatformConfig::stm32f746_qspi(), &config);
    (result, vec!["ctrl".to_owned(), "dnn".to_owned()])
}

#[test]
fn chrome_export_matches_golden_file() {
    let (result, names) = golden_scenario();
    let json = chrome_trace_json(&result.trace, &names);
    let golden = include_str!("golden_chrome.json");
    assert_eq!(
        json,
        golden.trim_end(),
        "Chrome export drifted from tests/golden_chrome.json; if the \
         change is intentional, regenerate with \
         `cargo test --test observability -- --ignored bless_golden`"
    );
}

/// The golden file is engine-independent: the legacy loop reproduces
/// the exact bytes the discrete-event default is pinned to.
#[test]
fn chrome_export_matches_golden_file_under_legacy_engine() {
    let (result, names) = golden_scenario_with(Engine::Legacy);
    let json = chrome_trace_json(&result.trace, &names);
    let golden = include_str!("golden_chrome.json");
    assert_eq!(json, golden.trim_end());
}

#[test]
fn chrome_export_round_trips_through_serde_json() {
    let (result, names) = golden_scenario();
    let json = chrome_trace_json(&result.trace, &names);
    let back: ChromeTrace = serde_json::from_str(&json).expect("export parses");
    assert_eq!(serde_json::to_string(&back).expect("re-serializes"), json);
    // One complete ("X") segment event per SegmentStarted/Completed pair.
    let completed = result
        .trace
        .events()
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::SegmentCompleted { .. }))
        .count();
    let exported = back
        .traceEvents
        .iter()
        .filter(|e| e.cat == "segment" && e.ph == "X")
        .count();
    assert!(completed > 0, "scenario must execute segments");
    assert_eq!(exported, completed);
}

/// Regenerates `tests/golden_chrome.json`. Ignored by default; run
/// explicitly after an intentional exporter change.
#[test]
#[ignore]
fn bless_golden() {
    let (result, names) = golden_scenario();
    let json = chrome_trace_json(&result.trace, &names);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_chrome.json");
    std::fs::write(path, json + "\n").expect("golden file written");
}

fn check_invariants(result: &SimResult) -> Result<(), TestCaseError> {
    let horizon = result.horizon;
    let tl = Timeline::from_trace(&result.trace, horizon);
    // Busy and idle partition the horizon exactly.
    prop_assert_eq!(tl.cpu_busy() + tl.cpu_idle(), horizon);
    prop_assert_eq!(
        tl.cpu_busy(),
        result.metrics.cpu_busy_cycles,
        "timeline busy disagrees with simulator counter"
    );
    prop_assert_eq!(
        result.trace.cpu_idle_cycles(horizon),
        result.metrics.cpu_idle_cycles,
        "trace idle intervals disagree with simulator counter"
    );
    // Utilizations and overlap are proper fractions.
    prop_assert!(tl.cpu_utilization_ppm() <= 1_000_000);
    prop_assert!(tl.dma_utilization_ppm() <= 1_000_000);
    prop_assert!(tl.overlap_ratio_ppm() <= 1_000_000);
    // DMA can never be busier than the wall clock, and overlap is
    // bounded by both parties.
    prop_assert!(tl.dma_busy() <= horizon);
    prop_assert!(tl.overlap_cycles() <= tl.dma_busy());
    prop_assert!(tl.overlap_cycles() <= tl.cpu_busy());
    let s = tl.summary();
    prop_assert_eq!(s.cpu_busy + s.cpu_idle, s.horizon);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(120),
        .. ProptestConfig::default()
    })]

    /// Timeline invariants hold on random overlapped task sets, at WCET
    /// and under execution-time jitter.
    #[test]
    fn timeline_invariants_hold(
        seed in 0u64..100_000,
        n_tasks in 1usize..6,
        util_pct in 5u64..90,
        fetch_ratio_pct in 0u64..120,
        scale_min in 300_000u64..=1_000_000,
    ) {
        let mut params = TasksetParams::baseline(n_tasks, util_pct * 10_000);
        params.fetch_compute_ratio_ppm = fetch_ratio_pct * 10_000;
        let p = PlatformConfig::stm32f746_qspi();
        let ts = generate(&params, &p, seed);
        let max_t = ts.tasks().iter().map(|t| t.period).max().unwrap();
        let config = SimConfig {
            horizon: max_t * 3,
            policy: Policy::FixedPriority,
            exec_scale_min_ppm: scale_min,
            seed,
            work_conserving: false,
            fault: FaultPlan::NONE,
            engine: Engine::Des,
            attribution: false,
            staging_window: 2,
        };
        let result = simulate(&ts, &p, &config);
        check_invariants(&result)?;
    }

    /// The same invariants hold for resident-only sets (no DMA at all:
    /// the overlap ratio must be zero, not NaN-ish garbage).
    #[test]
    fn timeline_invariants_hold_without_dma(
        seed in 0u64..100_000,
        n_tasks in 1usize..6,
        util_pct in 5u64..90,
    ) {
        let mut params = TasksetParams::baseline(n_tasks, util_pct * 10_000);
        params.mode = StagingMode::Resident;
        params.fetch_compute_ratio_ppm = 0;
        let p = PlatformConfig::stm32f746_qspi();
        let ts = generate(&params, &p, seed);
        let max_t = ts.tasks().iter().map(|t| t.period).max().unwrap();
        let config = SimConfig {
            horizon: max_t * 3,
            policy: Policy::FixedPriority,
            exec_scale_min_ppm: 1_000_000,
            seed,
            work_conserving: false,
            fault: FaultPlan::NONE,
            engine: Engine::Des,
            attribution: false,
            staging_window: 2,
        };
        let result = simulate(&ts, &p, &config);
        check_invariants(&result)?;
        let tl = Timeline::from_trace(&result.trace, result.horizon);
        prop_assert_eq!(tl.dma_busy(), Cycles::ZERO);
        prop_assert_eq!(tl.overlap_ratio_ppm(), 0);
    }

    /// Chrome exports of random runs always round-trip and pair events.
    #[test]
    fn chrome_export_always_round_trips(
        seed in 0u64..10_000,
        n_tasks in 1usize..5,
        util_pct in 5u64..70,
    ) {
        let params = TasksetParams::baseline(n_tasks, util_pct * 10_000);
        let p = PlatformConfig::stm32f746_qspi();
        let ts = generate(&params, &p, seed);
        let max_t = ts.tasks().iter().map(|t| t.period).max().unwrap();
        let config = SimConfig {
            horizon: max_t * 2,
            policy: Policy::FixedPriority,
            exec_scale_min_ppm: 1_000_000,
            seed,
            work_conserving: false,
            fault: FaultPlan::NONE,
            engine: Engine::Des,
            attribution: false,
            staging_window: 2,
        };
        let result = simulate(&ts, &p, &config);
        let names: Vec<String> = ts.tasks().iter().map(|t| t.name.clone()).collect();
        let export = chrome_trace(&result.trace, &names);
        let json = serde_json::to_string(&export).expect("serializes");
        let back: ChromeTrace = serde_json::from_str(&json).expect("parses");
        prop_assert_eq!(back.traceEvents.len(), export.traceEvents.len());
        let completed = result
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::SegmentCompleted { .. }))
            .count();
        let exported = export
            .traceEvents
            .iter()
            .filter(|e| e.cat == "segment" && e.ph == "X")
            .count();
        prop_assert_eq!(exported, completed);
    }
}
