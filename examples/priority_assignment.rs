//! Priority-assignment study on synthetic task sets: rate-monotonic vs
//! deadline-monotonic vs Audsley's optimal assignment, all judged by the
//! RT-MDM response-time analysis.
//!
//! ```sh
//! cargo run --release --example priority_assignment
//! ```

use rt_mdm::core::report;
use rt_mdm::mcusim::PlatformConfig;
use rt_mdm::sched::analysis::rta_limited_preemption;
use rt_mdm::sched::assign::{audsley, dm_order, rm_order};
use rt_mdm::sched::gen::{generate, TasksetParams};
use rt_mdm::sched::StagingMode;

fn main() {
    let platform = PlatformConfig::stm32f746_qspi();
    let sets_per_point = 200;

    println!("schedulability ratio by priority assignment (constrained deadlines, n=4):\n");
    let mut rows = Vec::new();
    for util_pct in [25u64, 35, 45, 55, 65, 75] {
        let mut wins = [0u32; 3]; // rm, dm, opa
        for seed in 0..sets_per_point {
            let mut params = TasksetParams::baseline(4, util_pct * 10_000);
            params.segments_range = (3, 6);
            params.fetch_compute_ratio_ppm = 200_000;
            params.deadline_factor_range_ppm = (500_000, 1_000_000);
            params.mode = StagingMode::Overlapped;
            let ts = generate(&params, &platform, seed);
            let rm = ts.reordered(&rm_order(&ts));
            if rta_limited_preemption(&rm, &platform).schedulable {
                wins[0] += 1;
            }
            let dm = ts.reordered(&dm_order(&ts));
            if rta_limited_preemption(&dm, &platform).schedulable {
                wins[1] += 1;
            }
            if audsley(&ts, &platform).is_some() {
                wins[2] += 1;
            }
        }
        let pct = |w: u32| format!("{:.1}%", 100.0 * f64::from(w) / sets_per_point as f64);
        rows.push(vec![
            format!("{util_pct}%"),
            pct(wins[0]),
            pct(wins[1]),
            pct(wins[2]),
        ]);
    }
    println!(
        "{}",
        report::table(&["compute util", "RM", "DM", "Audsley OPA"], &rows)
    );
    println!("expected shape: OPA ≥ DM ≥ RM at every utilization.");
}
