//! Activation spilling: running a model whose feature maps exceed the
//! SRAM activation budget by round-tripping oversized tensors through
//! external memory — trading staging traffic for SRAM.
//!
//! ```sh
//! cargo run --release --example spilling
//! ```

use rt_mdm::core::{report, RtMdm, TaskSpec};
use rt_mdm::dnn::zoo;
use rt_mdm::mcusim::PlatformConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = PlatformConfig::stm32f746_qspi();
    let model = zoo::mobilenet_v1_025();
    println!(
        "model: {} — peak activation footprint {} KiB (2× the largest tensor)\n",
        model.name(),
        2 * model.max_activation_bytes() / 1024
    );

    let mut rows = Vec::new();
    for budget_kb in [72u64, 48, 32, 16] {
        let mut fw = RtMdm::new(platform.clone())?;
        fw.add_task(
            TaskSpec::new("vww", model.clone(), 500_000, 500_000)
                .with_activation_budget(budget_kb * 1024),
        )?;
        let admission = fw.admit()?;
        let staged_kb = admission.plans[0].total_fetch_bytes() / 1024;
        let run = fw.simulate(2_000_000)?;
        let latency = run
            .max_response_of("vww")
            .map(|c| report::cycles_as_ms(c, run.cpu))
            .unwrap_or_else(|| "n/a".into());
        rows.push(vec![
            format!("{budget_kb} KiB"),
            format!("{staged_kb} KiB"),
            latency,
            if admission.schedulable() { "yes" } else { "NO" }.to_owned(),
            run.deadline_misses().to_string(),
        ]);
    }
    println!(
        "{}",
        report::table(
            &[
                "activation budget",
                "staged per inference",
                "max latency",
                "admitted",
                "misses (2 s)",
            ],
            &rows,
        )
    );
    println!("shape: shrinking the budget below the 72 KiB footprint adds spill");
    println!("traffic and latency, but keeps the model runnable in less SRAM.");
    Ok(())
}
