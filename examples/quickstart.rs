//! Quickstart: admit two DNN tasks on an STM32F746-class board with
//! weights in QSPI flash, check the timing guarantee, and watch them run.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rt_mdm::core::{RtMdm, TaskSpec};
use rt_mdm::dnn::zoo;
use rt_mdm::mcusim::PlatformConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a platform: 200 MHz Cortex-M7, 320 KiB SRAM, weights in
    //    40 MB/s QSPI NOR flash.
    let platform = PlatformConfig::stm32f746_qspi();
    println!(
        "platform: {} ({} SRAM, {} ext-mem)",
        platform.name, platform.sram_bytes, platform.ext_mem.kind
    );

    // 2. Declare the multi-DNN workload: a keyword spotter every 100 ms
    //    and an image classifier every 400 ms.
    let mut fw = RtMdm::new(platform)?;
    fw.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))?;
    fw.add_task(TaskSpec::new("ic", zoo::resnet8(), 400_000, 400_000))?;

    // 3. Admission control: SRAM layout + RT-MDM response-time analysis.
    let admission = fw.admit()?;
    println!("\n== admission ==");
    println!("{}", admission.to_table());
    println!(
        "occupancy utilization: {}",
        rt_mdm::core::report::ppm_as_pct(admission.occupancy_ppm)
    );
    for plan in &admission.plans {
        println!(
            "  {}: {} segments, {} bytes staged per inference",
            plan.model,
            plan.len(),
            plan.total_fetch_bytes()
        );
    }
    assert!(admission.schedulable(), "the guarantee must hold");

    // 4. Run two seconds of simulated time at worst-case execution.
    let run = fw.simulate(2_000_000)?;
    println!("\n== simulation (2 s, WCET) ==");
    println!("{}", run.to_table());
    assert_eq!(run.deadline_misses(), 0, "admitted set must not miss");

    // 5. A compact Gantt of the first 500 ms.
    println!("gantt (first 500 ms):");
    let horizon = run.cpu.cycles_from_micros(500_000);
    print!("{}", run.result.trace.gantt(horizon, 100));
    Ok(())
}
