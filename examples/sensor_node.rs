//! An always-on smart sensor node — the workload the paper's title
//! implies: multiple DNNs sharing one MCU whose weights live in external
//! memory, alongside a tight-deadline control task. Compares RT-MDM
//! against the whole-DNN run-to-completion baseline a stock TinyML
//! runtime would give you — on a platform where staging actually hurts
//! (200 MHz Cortex-M7, 40 MB/s QSPI flash).
//!
//! ```sh
//! cargo run --release --example sensor_node
//! ```

use rt_mdm::core::{report, FrameworkOptions, RtMdm, Strategy, TaskSpec};
use rt_mdm::dnn::zoo;
use rt_mdm::mcusim::PlatformConfig;

fn build(strategy: Option<Strategy>) -> Result<RtMdm, Box<dyn std::error::Error>> {
    let platform = PlatformConfig::stm32f746_qspi();
    let options = FrameworkOptions {
        force_strategy: strategy,
        ..FrameworkOptions::default()
    };
    let mut fw = RtMdm::with_options(platform, options)?;
    // A 20 ms sensor-fusion / control step — the deadline that suffers
    // when a big DNN hogs the CPU non-preemptively.
    fw.add_task(TaskSpec::new("control", zoo::micro_mlp(), 20_000, 20_000))?;
    // Keyword spotting every 100 ms.
    fw.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))?;
    // Visual wake word every 500 ms (≈75 ms of compute + 220 kB of
    // weights staged from QSPI).
    fw.add_task(TaskSpec::new(
        "vww",
        zoo::mobilenet_v1_025(),
        500_000,
        500_000,
    ))?;
    Ok(fw)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("workload: control @20ms + kws @100ms + vww @500ms on stm32f746-qspi\n");

    let mut rows = Vec::new();
    for (label, strategy) in [
        ("rt-mdm", None),
        ("whole-dnn (TinyML runtime)", Some(Strategy::WholeDnn)),
        ("fetch-then-compute", Some(Strategy::FetchThenCompute)),
    ] {
        let fw = build(strategy)?;
        let (admitted, util) = match fw.admit() {
            Ok(a) => (
                if a.schedulable() { "yes" } else { "NO" }.to_owned(),
                report::ppm_as_pct(a.occupancy_ppm),
            ),
            // Whole-DNN staging needs the full 219 kB of vww weights
            // resident at once — more than the 320 kB SRAM can spare.
            Err(_) => ("NO (SRAM overflow)".to_owned(), "n/a".to_owned()),
        };
        let run = fw.simulate(5_000_000)?;
        let ctl_resp = run
            .max_response_of("control")
            .map(|c| report::cycles_as_ms(c, run.cpu))
            .unwrap_or_else(|| "n/a".into());
        rows.push(vec![
            label.to_owned(),
            admitted,
            util,
            run.deadline_misses().to_string(),
            ctl_resp,
        ]);
    }
    println!(
        "{}",
        report::table(
            &[
                "strategy",
                "admitted",
                "occupancy",
                "misses (5 s)",
                "control max response",
            ],
            &rows,
        )
    );
    println!("expected shape: only rt-mdm both admits and runs clean; whole-dnn");
    println!("blocks the 20 ms control task behind ~80 ms of staged inference.\n");

    // Detail view of the RT-MDM run.
    let fw = build(None)?;
    let admission = fw.admit()?;
    println!("rt-mdm admission:\n{}", admission.to_table());
    let run = fw.simulate(5_000_000)?;
    println!("rt-mdm per-task detail:\n{}", run.to_table());
    Ok(())
}
