//! Design-space exploration: how the SRAM fetch-buffer size and the
//! external-memory bandwidth shape single-inference latency.
//!
//! This is the engineering question RT-MDM's memory manager answers at
//! admission time — the example walks the same trade-offs interactively.
//!
//! ```sh
//! cargo run --example design_space
//! ```

use rt_mdm::core::report;
use rt_mdm::dnn::{zoo, CostModel};
use rt_mdm::mcusim::{Cycles, ExtMemConfig, ExtMemKind, PlatformConfig};
use rt_mdm::xmem::{pipeline, segment_model, ExecutionStrategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cost = CostModel::cmsis_nn_m7();
    let base = PlatformConfig::stm32f746_qspi();
    let model = zoo::resnet8();
    println!(
        "model: {} ({} weight bytes, largest layer {} bytes)\n",
        model.name(),
        model.total_weight_bytes(),
        model.max_layer_weight_bytes()
    );

    // Sweep 1: buffer size at fixed bandwidth.
    let mut rows = Vec::new();
    for kb in [40u64, 48, 64, 96, 128] {
        let seg = segment_model(&model, &cost, kb * 1024)?;
        let lat = pipeline::isolated_latency(&seg, &base, ExecutionStrategy::OverlappedPrefetch);
        let naive = pipeline::isolated_latency(&seg, &base, ExecutionStrategy::FetchThenCompute);
        let eff = pipeline::overlap_efficiency_pct(&seg, &base)
            .map(|e| format!("{e}%"))
            .unwrap_or_else(|| "n/a".into());
        rows.push(vec![
            format!("{kb} KiB"),
            seg.len().to_string(),
            report::cycles_as_ms(lat, base.cpu),
            report::cycles_as_ms(naive, base.cpu),
            eff,
        ]);
    }
    println!(
        "buffer-size sweep (QSPI 40 MB/s):\n{}",
        report::table(
            &[
                "buffer",
                "segments",
                "rt-mdm latency",
                "fetch-then-compute",
                "overlap hidden"
            ],
            &rows,
        )
    );

    // Sweep 2: bandwidth at fixed 48 KiB buffer.
    let seg = segment_model(&model, &cost, 48 * 1024)?;
    let mut rows = Vec::new();
    for mbps in [10u64, 20, 40, 80, 160, 320] {
        let platform = base.with_ext_mem(ExtMemConfig::from_bandwidth(
            ExtMemKind::Custom,
            base.cpu,
            mbps * 1_000_000,
            Cycles::new(120),
        ));
        let lat =
            pipeline::isolated_latency(&seg, &platform, ExecutionStrategy::OverlappedPrefetch);
        let ideal = pipeline::isolated_latency(&seg, &platform, ExecutionStrategy::AllInSram);
        let overhead_ppm = (lat.get().saturating_sub(ideal.get())) * 1_000_000 / ideal.get();
        rows.push(vec![
            format!("{mbps} MB/s"),
            report::cycles_as_ms(lat, platform.cpu),
            report::cycles_as_ms(ideal, platform.cpu),
            report::ppm_as_pct(overhead_ppm),
        ]);
    }
    println!(
        "bandwidth sweep (48 KiB buffer):\n{}",
        report::table(
            &[
                "ext-mem bandwidth",
                "rt-mdm latency",
                "all-in-sram",
                "staging overhead"
            ],
            &rows,
        )
    );
    Ok(())
}
