//! Vendored `#[derive(Serialize, Deserialize)]` for the vendored serde.
//!
//! The build environment cannot reach crates.io, so this proc-macro
//! crate parses the derive input by hand (no `syn`/`quote`) and emits
//! impls of the vendored serde's `Serialize`/`Deserialize` traits.
//!
//! Supported shapes — exactly what this workspace derives on:
//! - non-generic structs with named fields (maps to `Content::Map`)
//! - newtype / `#[serde(transparent)]` structs (maps to the inner value)
//! - multi-field tuple structs (maps to `Content::Seq`)
//! - non-generic enums with unit, newtype, tuple, and struct variants
//!   (externally tagged, like upstream serde's default)
//!
//! Generic types are rejected with a compile-time panic; nothing in the
//! workspace derives on a generic type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the item being derived on.
enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// One enum variant and the shape of its payload.
struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Newtype,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    transparent: bool,
    kind: Kind,
}

/// Derives the vendored serde's `Serialize` for the annotated item.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives the vendored serde's `Deserialize` for the annotated item.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;

    // Leading attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    transparent |= attr_is_serde_transparent(&g.stream());
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` and friends carry a parenthesized group.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let item_kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected item name, found {other}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generic type `{name}` is not supported");
        }
    }

    let kind = match item_kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(split_top_level(&g.stream()).len())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(&g.stream()))
            }
            other => panic!("serde derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde derive: unsupported item kind `{other}`"),
    };

    Input {
        name,
        transparent,
        kind,
    }
}

/// Does an attribute body (the tokens inside `#[...]`) spell
/// `serde(transparent)`?
fn attr_is_serde_transparent(body: &TokenStream) -> bool {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "transparent"))
        }
        _ => false,
    }
}

/// Splits a token stream at top-level commas, tracking `<...>` nesting
/// (delimiter groups are already opaque single tokens). Empty chunks
/// from trailing commas are dropped.
fn split_top_level(stream: &TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for token in stream.clone() {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if !current.is_empty() {
                        chunks.push(std::mem::take(&mut current));
                    }
                    continue;
                }
                _ => {}
            }
        }
        current.push(token);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Field names of a named-field body (`a: T, b: U, ...`).
fn parse_named_fields(stream: &TokenStream) -> Vec<String> {
    split_top_level(stream)
        .iter()
        .map(|chunk| {
            field_name(chunk)
                .unwrap_or_else(|| panic!("serde derive: cannot find field name in {chunk:?}"))
        })
        .collect()
}

/// First identifier of a field chunk after attributes and visibility.
fn field_name(chunk: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    loop {
        match chunk.get(i)? {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // `#[attr]`
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => return Some(id.to_string()),
            _ => return None,
        }
    }
}

fn parse_variants(stream: &TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .iter()
        .map(|chunk| {
            let name = field_name(chunk)
                .unwrap_or_else(|| panic!("serde derive: cannot find variant name in {chunk:?}"));
            // The payload group, if any, directly follows the name.
            let payload = chunk.iter().find_map(|t| match t {
                TokenTree::Group(g) if g.delimiter() != Delimiter::Bracket => Some(g),
                _ => None,
            });
            let shape = match payload {
                None => VariantShape::Unit,
                Some(g) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Named(parse_named_fields(&g.stream()))
                }
                Some(g) => match split_top_level(&g.stream()).len() {
                    0 => VariantShape::Unit,
                    1 => VariantShape::Newtype,
                    n => VariantShape::Tuple(n),
                },
            };
            Variant { name, shape }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) if item.transparent && fields.len() == 1 => {
            format!("::serde::Serialize::to_content(&self.{})", fields[0])
        }
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "({:?}.to_owned(), ::serde::Serialize::to_content(&self.{f}))",
                        f
                    )
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_owned(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Content::Null".to_owned(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Content::Str({vn:?}.to_owned()),"
                        ),
                        VariantShape::Newtype => format!(
                            "{name}::{vn}(x0) => ::serde::Content::Map(vec![({vn:?}.to_owned(), \
                             ::serde::Serialize::to_content(x0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Content::Map(vec![({vn:?}.to_owned(), \
                                 ::serde::Content::Seq(vec![{}]))]),",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_owned(), ::serde::Serialize::to_content({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Content::Map(vec![({vn:?}.to_owned(), \
                                 ::serde::Content::Map(vec![{}]))]),",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

/// `field: Deserialize::from_content(content.get("field")...)?,`
fn named_field_initializers(owner: &str, fields: &[String], source: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_content({source}.get({f:?}).ok_or_else(|| \
                 ::serde::DeError::new(concat!(\"missing field `\", {f:?}, \"` in \", \
                 {owner:?})))?)?,"
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) if item.transparent && fields.len() == 1 => format!(
            "Ok({name} {{ {}: ::serde::Deserialize::from_content(content)? }})",
            fields[0]
        ),
        Kind::NamedStruct(fields) => format!(
            "Ok({name} {{\n{}\n}})",
            named_field_initializers(name, fields, "content")
        ),
        Kind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_content(content)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                .collect();
            format!(
                "match content {{\n\
                 ::serde::Content::Seq(items) if items.len() == {n} => Ok({name}({})),\n\
                 other => Err(::serde::DeError::expected(\"sequence of length {n}\", other)),\n\
                 }}",
                items.join(", ")
            )
        }
        Kind::UnitStruct => format!("Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Newtype => Some(format!(
                            "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_content(value)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_content(&items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => match value {{\n\
                                 ::serde::Content::Seq(items) if items.len() == {n} => \
                                 Ok({name}::{vn}({})),\n\
                                 other => Err(::serde::DeError::expected(\"sequence of length \
                                 {n}\", other)),\n\
                                 }},",
                                items.join(", ")
                            ))
                        }
                        VariantShape::Named(fields) => Some(format!(
                            "{vn:?} => Ok({name}::{vn} {{\n{}\n}}),",
                            named_field_initializers(name, fields, "value")
                        )),
                    }
                })
                .collect();
            format!(
                "match content {{\n\
                 ::serde::Content::Str(s) => match s.as_str() {{\n\
                 {}\n\
                 other => Err(::serde::DeError::new(format!(\"unknown variant `{{other}}` of \
                 {name}\"))),\n\
                 }},\n\
                 ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                 let (key, value) = &entries[0];\n\
                 match key.as_str() {{\n\
                 {}\n\
                 other => Err(::serde::DeError::new(format!(\"unknown variant `{{other}}` of \
                 {name}\"))),\n\
                 }}\n\
                 }}\n\
                 other => Err(::serde::DeError::expected(\"enum {name}\", other)),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(content: &::serde::Content) -> Result<Self, ::serde::DeError> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
