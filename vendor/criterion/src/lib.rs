//! Vendored, dependency-free stand-in for `criterion`.
//!
//! The build environment cannot reach crates.io, so this crate keeps the
//! workspace's `cargo bench` targets compiling and running with the same
//! source. It is a plain wall-clock runner: each benchmark calibrates an
//! iteration count to a ~100 ms measurement window and prints mean
//! ns/iter (plus derived throughput when configured). No statistics,
//! plots, or saved baselines — use upstream criterion for real numbers.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Measurement window each benchmark is calibrated to fill.
const TARGET_WINDOW: Duration = Duration::from_millis(100);

/// Top-level benchmark driver, one per `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
            throughput: None,
        }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Uses the parameter's `Display` form as the benchmark name.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{id}", self.name);
        run_one(&label, self.throughput, &mut f);
        self
    }

    /// Runs a parameterized benchmark inside this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group. (Reporting is immediate; this is for API parity.)
    pub fn finish(self) {}
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Calibrates and measures `routine`, recording mean ns/iteration.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm up caches and lazy initialization.
        for _ in 0..3 {
            black_box(routine());
        }
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_WINDOW || iters >= 1 << 22 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            // Scale toward the target window, at least doubling.
            let scale = TARGET_WINDOW.as_nanos() as f64 / elapsed.as_nanos().max(1) as f64;
            iters = (iters as f64 * scale.clamp(2.0, 100.0)) as u64;
        }
    }
}

fn run_one<F>(label: &str, throughput: Option<Throughput>, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { ns_per_iter: 0.0 };
    f(&mut bencher);
    let ns = bencher.ns_per_iter;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:.1} Melem/s", n as f64 * 1e3 / ns),
        Throughput::Bytes(n) => format!("  {:.1} MiB/s", n as f64 * 1e9 / ns / (1 << 20) as f64),
    });
    println!("{label:<50} {ns:>14.1} ns/iter{}", rate.unwrap_or_default());
}

/// Collects benchmark functions into a group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` to run one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_support_throughput_and_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(64));
        g.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}
