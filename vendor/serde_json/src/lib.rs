//! Vendored, dependency-free stand-in for `serde_json`.
//!
//! Serializes the vendored serde's `Content` tree to JSON text and
//! parses JSON text back into it. Covers the workspace's needs: model
//! snapshots (`Model::to_json` / `from_json`) and result artifacts.

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// JSON (de)serialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out);
    Ok(out)
}

/// Parses JSON text and reconstructs a `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_content(&content)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(content: &Content, out: &mut String) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // Rust's shortest-round-trip float formatting; integral
                // floats keep a ".0" so they re-parse as floats.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&v.to_string());
                }
            } else {
                // JSON has no Inf/NaN; match serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_content(value, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{word}` at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null").map(|()| Content::Null),
            Some(b't') => self.literal("true").map(|()| Content::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not emitted by our
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("unexpected end"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Content::U64(v))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Content::I64(v))
        } else {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"hi\n\"".to_owned()).unwrap(), "\"hi\\n\\\"\"");
        assert_eq!(from_str::<String>("\"hi\\n\\\"\"").unwrap(), "hi\n\"");
    }

    #[test]
    fn float_round_trips() {
        for v in [0.0f64, 1.5, -2.25, 0.1, 1e-9, 12345.0] {
            let text = to_string(&v).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, v, "{text}");
        }
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![(1u64, "a".to_owned()), (2, "b".to_owned())];
        let text = to_string(&v).unwrap();
        let back: Vec<(u64, String)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u64>("{not json").is_err());
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("42 trailing").is_err());
        assert!(from_str::<Vec<u64>>("[1,2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn unicode_survives() {
        let s = "λ → µ 控制".to_owned();
        let text = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), s);
    }
}
