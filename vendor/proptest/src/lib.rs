//! Vendored, dependency-free stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the property-testing subset the workspace uses: the [`proptest!`]
//! macro with `#![proptest_config(...)]`, range/collection/option/bool
//! strategies, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted:
//! - sampling is plain random draws — no shrinking of failing cases
//!   (failures print the full input tuple instead);
//! - `proptest-regressions` files are not consulted;
//! - the per-test RNG seed derives from the test name (override with
//!   `PROPTEST_SEED`), so runs are deterministic but streams differ
//!   from upstream.

pub mod strategy {
    //! The [`Strategy`] trait: something that can draw a value.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A source of random values of an associated type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, f32, f64);
}

pub mod bool {
    //! Boolean strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing a fair coin flip.
    pub struct Any;

    /// Either boolean with equal probability.
    pub const ANY: Any = Any;

    impl crate::strategy::Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for a `Vec` with element strategy `S` and a length
    /// drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: each element drawn from `element`, length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing `None` half the time and `Some(inner)`
    /// otherwise.
    pub struct OptionStrategy<S>(S);

    /// `Option` strategy over `inner` with a 50% `Some` probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.5) {
                Some(self.0.sample(rng))
            } else {
                None
            }
        }
    }
}

pub mod test_runner {
    //! Driving a property over many sampled cases.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Why a single sampled case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property is violated; the string explains how.
        Fail(String),
        /// The inputs don't satisfy a `prop_assume!`; retry with new ones.
        Reject(String),
    }

    /// Outcome of one sampled case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration, constructed with struct-update syntax from
    /// [`ProptestConfig::default`].
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
        /// Cap on `prop_assume!` rejections across the whole run.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// FNV-1a over the test name: a stable per-test default seed.
    fn name_seed(name: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// Runs `case` until `config.cases` samples pass, panicking (with
    /// the sampled inputs) on the first failure.
    ///
    /// `case` returns the Debug-rendering of the sampled inputs plus
    /// the case outcome.
    pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut StdRng) -> (String, TestCaseResult),
    {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| name_seed(name));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        while accepted < config.cases {
            let (inputs, outcome) = case(&mut rng);
            match outcome {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(cond)) => {
                    rejected += 1;
                    assert!(
                        rejected <= config.max_global_rejects,
                        "property `{name}`: too many prop_assume! rejections ({rejected}); \
                         last: {cond}"
                    );
                }
                Err(TestCaseError::Fail(msg)) => panic!(
                    "property `{name}` failed after {accepted} passing case(s) \
                     (seed {seed}):\n  {msg}\n  inputs: {inputs}"
                ),
            }
        }
    }
}

pub mod prelude {
    //! Everything a property-test module needs.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests: `fn name(arg in strategy, ...) { body }`
/// items become `#[test]` functions that sample and check
/// `config.cases` inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!([$config] $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!([$crate::test_runner::ProptestConfig::default()] $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: expands one `fn` item at a
/// time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ([$config:expr]) => {};
    (
        [$config:expr]
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_property(stringify!($name), &__config, |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}  "),+),
                    $(&$arg),+
                );
                let __outcome = (move || -> $crate::test_runner::TestCaseResult {
                    $body
                    Ok(())
                })();
                (__inputs, __outcome)
            });
        }
        $crate::__proptest_items!([$config] $($rest)*);
    };
}

/// Fails the current case (with an optional formatted message) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current case when the two expressions differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: {} == {}: {}\n  left: {:?}\n  right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// Rejects the current case (inputs outside the property's domain)
/// without counting it toward the case budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

        #[test]
        fn ranges_are_in_bounds(
            a in 0u64..100,
            b in -5i32..=5,
            f in 0.25f64..0.75,
            flag in crate::bool::ANY,
            v in crate::collection::vec(1u8..4, 2..6),
            opt in crate::option::of(10u64..20),
        ) {
            prop_assert!(a < 100);
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(usize::from(flag) < 2);
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (1..4).contains(&x)));
            if let Some(x) = opt {
                prop_assert!((10..20).contains(&x));
            }
        }

        #[test]
        fn assume_rejects_without_consuming_cases(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_inputs() {
        crate::test_runner::run_property(
            "always_fails",
            &ProptestConfig {
                cases: 4,
                ..ProptestConfig::default()
            },
            |_rng| {
                (
                    "x = 1".to_owned(),
                    Err(TestCaseError::Fail("forced".to_owned())),
                )
            },
        );
    }
}
