//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the subset of the `rand 0.8` API the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen_range` / `gen` / `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well-distributed, and fully deterministic per seed, which is all the
//! task-set generator and the simulator's jitter model require. The
//! streams differ from upstream `rand`'s ChaCha-based `StdRng`, so any
//! numbers recorded under the real crate will differ; every consumer in
//! this workspace treats seeds as opaque, so only determinism matters.

pub mod rngs;

/// Generates a random value of `Self` from the "standard" distribution
/// (unit interval for floats, full range for integers, fair coin for
/// `bool`). Mirror of `rand::distributions::Standard` via `Rng::gen`.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits of the stream (upper half of a word).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range from which a single value can be drawn — implemented for
/// `Range` and `RangeInclusive` over the primitive numeric types.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Draws a value from the standard distribution of `T`.
    #[allow(clippy::should_implement_trait)] // name fixed by the upstream API
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps a word to the unit interval `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps a word to the unit interval `[0, 1)` with 24 bits of precision.
#[inline]
fn unit_f32(word: u64) -> f32 {
    (word >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng.next_u64())
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                (self.start as $wide).wrapping_add(widening_mod(rng.next_u64(), span)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is valid.
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(widening_mod(rng.next_u64(), span)) as $t
            }
        }
    )*};
}

/// `word % span` — the tiny modulo bias is irrelevant for experiment
/// workloads and keeps the stream consumption at one word per draw.
#[inline]
fn widening_mod(word: u64, span: u64) -> u64 {
    word % span
}

int_sample_range!(
    u8 => u64,
    u16 => u64,
    u32 => u64,
    u64 => u64,
    usize => u64,
    i8 => u64,
    i16 => u64,
    i32 => u64,
    i64 => u64,
);

macro_rules! float_sample_range {
    ($($t:ty => $unit:ident),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * $unit(rng.next_u64())
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * $unit(rng.next_u64())
            }
        }
    )*};
}

float_sample_range!(f64 => unit_f64, f32 => unit_f32);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
            let i: i8 = rng.gen_range(-128i8..=127);
            let _ = i;
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn unit_interval_is_half_open() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_width_exclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(3);
        let v: u64 = rng.gen_range(0..u64::MAX);
        assert!(v < u64::MAX);
    }
}
