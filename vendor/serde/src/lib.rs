//! Vendored, dependency-free stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the minimal (de)serialization framework the workspace actually uses:
//! `#[derive(Serialize, Deserialize)]` on non-generic structs and enums,
//! consumed by the vendored `serde_json`.
//!
//! Instead of upstream serde's visitor architecture, values round-trip
//! through an owned [`Content`] tree (similar in spirit to
//! `serde_json::Value`). This is slower and allocates more than real
//! serde, but serialization here is only used for model snapshots and
//! result artifacts — never on a hot path.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// Self-describing value tree: the data model every type maps through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always < 0; non-negative values use `U64`).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence (arrays, tuples, Vec).
    Seq(Vec<Content>),
    /// Ordered key/value map (structs, maps, enum variants with data).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up `key` in a `Map`; `None` for absent keys or non-maps.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// One-word description of the variant, for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization failure: what was expected and what was found.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Standard "expected X, found Y" error.
    pub fn expected(what: &str, found: &Content) -> Self {
        DeError::new(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into the data model.
    fn to_content(&self) -> Content;
}

/// Types that can be reconstructed from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, or explains why the tree doesn't match.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

// `Content` round-trips through itself: this lets callers parse
// arbitrary JSON into the raw tree (`serde_json::from_str::<Content>`)
// for hand-rolled tolerant deserialization — the derived `Deserialize`
// requires every field to be present, which is too strict for wire
// formats with optional fields — and serialize a hand-built tree back
// out (upstream serde_json offers the same via `Value`).
impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::new(format!("integer {v} out of range"))),
                    other => Err(DeError::expected("unsigned integer", other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_content(&self) -> Content {
        Content::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::U64(v) => {
                usize::try_from(*v).map_err(|_| DeError::new(format!("integer {v} out of range")))
            }
            other => Err(DeError::expected("unsigned integer", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = i64::from(*self);
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let wide: i64 = match content {
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError::new(format!("integer {v} out of range")))?,
                    Content::I64(v) => *v,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::new(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::F64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_content(item)?;
                }
                Ok(out)
            }
            Content::Seq(items) => Err(DeError::new(format!(
                "expected sequence of length {N}, found length {}",
                items.len()
            ))),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) if items.len() == 2 => {
                Ok((A::from_content(&items[0])?, B::from_content(&items[1])?))
            }
            other => Err(DeError::expected("2-tuple", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) if items.len() == 3 => Ok((
                A::from_content(&items[0])?,
                B::from_content(&items[1])?,
                C::from_content(&items[2])?,
            )),
            other => Err(DeError::expected("3-tuple", other)),
        }
    }
}

/// Maps serialize as a sequence of `[key, value]` pairs so that
/// non-string keys survive the JSON round trip losslessly.
impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Seq(
            self.iter()
                .map(|(k, v)| Content::Seq(vec![k.to_content(), v.to_content()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(<(K, V)>::from_content).collect(),
            other => Err(DeError::expected("sequence of pairs", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_none_is_null() {
        let none: Option<u64> = None;
        assert_eq!(none.to_content(), Content::Null);
        assert_eq!(Option::<u64>::from_content(&Content::Null).unwrap(), None);
    }

    #[test]
    fn btreemap_round_trips_nonstring_keys() {
        let mut m = BTreeMap::new();
        m.insert(7u64, "seven".to_owned());
        m.insert(9u64, "nine".to_owned());
        let c = m.to_content();
        let back: BTreeMap<u64, String> = Deserialize::from_content(&c).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn array_length_mismatch_errors() {
        let c = Content::Seq(vec![Content::U64(1)]);
        assert!(<[u64; 2]>::from_content(&c).is_err());
    }

    #[test]
    fn signed_splits_by_sign() {
        assert_eq!(5i32.to_content(), Content::U64(5));
        assert_eq!((-5i32).to_content(), Content::I64(-5));
        assert_eq!(i32::from_content(&Content::U64(5)).unwrap(), 5);
        assert_eq!(i32::from_content(&Content::I64(-5)).unwrap(), -5);
    }
}
