//! # rt-mdm — umbrella crate
//!
//! Reproduction of **RT-MDM: Real-Time Scheduling Framework for Multi-DNN
//! on MCU Using External Memory** (DAC 2024).
//!
//! This crate re-exports the workspace crates under one namespace so that
//! examples and integration tests can write `rt_mdm::core::RtMdm` instead
//! of depending on five crates. Library users embedding individual pieces
//! should depend on the member crates directly:
//!
//! - [`mcusim`] — discrete-event MCU platform simulator (CPU, DMA, bus).
//! - [`obs`] — observability: metrics registry, timeline analytics over
//!   execution traces, ASCII Gantt rendering, Chrome/JSONL exporters.
//! - [`dnn`] — int8 quantized DNN engine, model zoo, cost model.
//! - [`xmem`] — external-memory staging: segmentation, double buffering,
//!   prefetch pipeline timing.
//! - [`sched`] — segmented real-time task model, schedulers,
//!   schedulability analyses, priority assignment, task-set generation.
//! - [`check`] — static verifier and lint engine: staging races, plan
//!   well-formedness, admission lints, graph lints, platform sanity.
//! - [`core`] — the RT-MDM framework: admission control + executor.
//!
//! ## Quickstart
//!
//! ```rust
//! use rt_mdm::core::{RtMdm, TaskSpec};
//! use rt_mdm::dnn::zoo;
//! use rt_mdm::mcusim::PlatformConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = PlatformConfig::stm32f746_qspi();
//! let mut framework = RtMdm::new(platform)?;
//! framework.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))?;
//! framework.add_task(TaskSpec::new("vww", zoo::mobilenet_v1_025(), 500_000, 500_000))?;
//! let admission = framework.admit()?;
//! assert!(admission.schedulable());
//! let run = framework.simulate(2_000_000)?;
//! assert_eq!(run.deadline_misses(), 0);
//! # Ok(())
//! # }
//! ```

pub use rtmdm_check as check;
pub use rtmdm_core as core;
pub use rtmdm_dnn as dnn;
pub use rtmdm_mcusim as mcusim;
pub use rtmdm_obs as obs;
pub use rtmdm_sched as sched;
pub use rtmdm_xmem as xmem;
