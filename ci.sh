#!/usr/bin/env bash
# Local CI: the exact gate .github/workflows/ci.yml runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo clippy =="
cargo clippy --all-targets --workspace -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo doc (obs + check + sched + core + par) =="
RUSTDOCFLAGS="-D warnings" cargo doc -q -p rtmdm-obs -p rtmdm-check -p rtmdm-sched \
  -p rtmdm-core -p rtmdm-par --no-deps

echo "== rtmdm trace smoke =="
trace_out="$(mktemp)"
./target/release/rtmdm trace --platform stm32f746-qspi --task kws=ds-cnn@100 \
  --seconds 1 --out "$trace_out" --format chrome --gantt
# The export must re-parse through the bundled serde_json (the test
# binary below does exactly that against the golden scenario too).
cargo test -q --test observability chrome_export_round_trips_through_serde_json
rm -f "$trace_out"

echo "== rtmdm fault-injection smoke =="
# A fixed-seed nonzero-rate run must succeed and export re-parseable
# JSON; a zero-rate run must be byte-identical to one with no fault
# flags at all (the inactive plan is provably free).
fault_out="$(mktemp)"
./target/release/rtmdm trace --platform stm32f746-qspi --task kws=ds-cnn@100 \
  --seconds 1 --fault-rate 200000 --fault-seed 42 --fault-jitter 25 \
  --out "$fault_out" --format chrome
fault_out2="$(mktemp)"
./target/release/rtmdm trace --platform stm32f746-qspi --task kws=ds-cnn@100 \
  --seconds 1 --fault-rate 200000 --fault-seed 42 --fault-jitter 25 \
  --out "$fault_out2" --format chrome
cmp "$fault_out" "$fault_out2" || {
  echo "fault smoke: seeded runs are not reproducible" >&2; exit 1; }
grep -q '"cat":"fault"' "$fault_out" || {
  echo "fault smoke: no fault events in export" >&2; exit 1; }
plain_out="$(mktemp)"
zero_out="$(mktemp)"
./target/release/rtmdm trace --platform stm32f746-qspi --task kws=ds-cnn@100 \
  --seconds 1 --out "$plain_out" --format chrome
./target/release/rtmdm trace --platform stm32f746-qspi --task kws=ds-cnn@100 \
  --seconds 1 --fault-rate 0 --fault-seed 123 --out "$zero_out" --format chrome
cmp "$plain_out" "$zero_out" || {
  echo "fault smoke: zero-rate run differs from no-plan run" >&2; exit 1; }
rm -f "$fault_out" "$fault_out2" "$plain_out" "$zero_out"

echo "== engine equivalence smoke =="
# A pinned scenario — faults, jitter and all — simulated under both
# time-advancement engines must export byte-identical Chrome traces.
# rtmdm-bench's F12 grid covers the full scenario matrix; this is the
# cheap always-on gate for the DES-versus-legacy contract.
eng_legacy="$(mktemp)"
eng_des="$(mktemp)"
./target/release/rtmdm trace --platform stm32f746-qspi --task kws=ds-cnn@100 \
  --seconds 1 --fault-rate 100000 --fault-seed 7 --fault-jitter 25 \
  --engine legacy --out "$eng_legacy" --format chrome
./target/release/rtmdm trace --platform stm32f746-qspi --task kws=ds-cnn@100 \
  --seconds 1 --fault-rate 100000 --fault-seed 7 --fault-jitter 25 \
  --engine des --out "$eng_des" --format chrome
cmp "$eng_legacy" "$eng_des" || {
  echo "engine smoke: legacy and des traces diverge" >&2; exit 1; }
rm -f "$eng_legacy" "$eng_des"

echo "== rtmdm explain smoke =="
# The forensics path: a pinned miss-producing scenario must attribute
# cleanly (exit 0, conservation exact), print the blame table, and its
# --json report must re-validate through the bundled serde_json (the
# CLI re-parses it before printing). Attribution is opt-in everywhere
# else: a trace with --attribution off (the default) must be
# byte-identical to one that never heard of the flag.
explain_out="$(mktemp)"
./target/release/rtmdm explain --platform stm32f746-qspi --task kws=ds-cnn@30 \
  --task ic=resnet8@150 --fault-rate 100000 --seconds 1 > "$explain_out"
grep -q 'dominant' "$explain_out" || {
  echo "explain smoke: no blame table in output" >&2; exit 1; }
grep -q 'conservation: exact' "$explain_out" || {
  echo "explain smoke: conservation line missing" >&2; exit 1; }
grep -q '^miss ' "$explain_out" || {
  echo "explain smoke: scenario produced no miss forensics" >&2; exit 1; }
explain_json="$(mktemp)"
./target/release/rtmdm explain --platform stm32f746-qspi --task kws=ds-cnn@30 \
  --task ic=resnet8@150 --fault-rate 100000 --seconds 1 --json > "$explain_json"
grep -q '"blame"' "$explain_json" || {
  echo "explain smoke: --json report missing blame section" >&2; exit 1; }
attr_off="$(mktemp)"
attr_default="$(mktemp)"
./target/release/rtmdm trace --platform stm32f746-qspi --task kws=ds-cnn@100 \
  --seconds 1 --attribution off --out "$attr_off" --format chrome
./target/release/rtmdm trace --platform stm32f746-qspi --task kws=ds-cnn@100 \
  --seconds 1 --out "$attr_default" --format chrome
cmp "$attr_off" "$attr_default" || {
  echo "explain smoke: attribution default is not off" >&2; exit 1; }
rm -f "$explain_out" "$explain_json" "$attr_off" "$attr_default"

echo "== rtmdm check sweep =="
# Every zoo model on every platform preset must verify to parseable
# JSON and a 0/2 exit; the JSON is re-parsed by the CLI itself (it
# round-trips the report through the bundled serde_json before
# printing). A deliberately broken spec must exit 2.
for platform in cortex-m4-lowend stm32f746-qspi stm32h743-ospi ideal-sram; do
  for model in micro-mlp ds-cnn lenet5 resnet8 mobilenet-v1-025 autoencoder; do
    set +e
    ./target/release/rtmdm check --platform "$platform" \
      --task "t=${model}@1000" --json --deny-warnings > /dev/null
    code=$?
    set -e
    if [[ $code -ne 0 && $code -ne 2 ]]; then
      echo "check sweep: $platform/$model exited $code" >&2
      exit 1
    fi
  done
done
if ./target/release/rtmdm check --task bad=ds-cnn@100/200 > /dev/null; then
  echo "check smoke: broken spec unexpectedly verified clean" >&2
  exit 1
fi

echo "== rtmdm check --explore smoke =="
# The explorer gate: an analysis-admitted pair must also prove safe
# under exhaustive exploration (exit 0, space covered); a directed
# overload must exit 2 with a reachable-miss finding and a witness
# that re-validates through the bundled serde_json (the CLI
# round-trips it before writing). --explain must describe a known
# rule and reject an unknown one as a usage error.
explore_out="$(mktemp)"
./target/release/rtmdm check --platform stm32f746-qspi --task kws=ds-cnn@100 \
  --task ic=resnet8@400 --explore > "$explore_out"
grep -q 'complete' "$explore_out" || {
  echo "explore smoke: admitted cell did not cover its space" >&2; exit 1; }
witness_out="$(mktemp)"
set +e
./target/release/rtmdm check --platform stm32f746-qspi --task ic=resnet8@10 \
  --explore --witness "$witness_out" > "$explore_out"
code=$?
set -e
if [[ $code -ne 2 ]]; then
  echo "explore smoke: overload exited $code, want 2" >&2; exit 1
fi
grep -q 'RTM050' "$explore_out" || {
  echo "explore smoke: overload report missing RTM050" >&2; exit 1; }
grep -q '"rtmdm-witness/1"' "$witness_out" || {
  echo "explore smoke: witness JSON missing schema marker" >&2; exit 1; }
# Strategy equivalence on the same pinned RTM050 scenario: fork-based
# incremental exploration and replay-from-zero must produce the exact
# same report bytes and witness JSON (the CLI-level corollary of the
# differential property suite; DESIGN.md §2.7).
fork_report="$(mktemp)"; fork_witness="$(mktemp)"
replay_report="$(mktemp)"; replay_witness="$(mktemp)"
set +e
./target/release/rtmdm check --platform stm32f746-qspi --task ic=resnet8@10 \
  --explore --strategy fork --witness "$fork_witness" > "$fork_report"
fork_code=$?
./target/release/rtmdm check --platform stm32f746-qspi --task ic=resnet8@10 \
  --explore --strategy replay --witness "$replay_witness" > "$replay_report"
replay_code=$?
set -e
if [[ $fork_code -ne 2 || $replay_code -ne 2 ]]; then
  echo "explore smoke: strategies exited $fork_code/$replay_code, want 2/2" >&2
  exit 1
fi
cmp -s "$fork_report" "$replay_report" || {
  echo "explore smoke: fork and replay reports differ" >&2; exit 1; }
cmp -s "$fork_witness" "$replay_witness" || {
  echo "explore smoke: fork and replay witness JSON differ" >&2; exit 1; }
# Thread-count invariance: the speculative parallel frontier may not
# change a single output byte.
threads1_out="$(mktemp)"
threads8_out="$(mktemp)"
set +e
RTMDM_THREADS=1 ./target/release/rtmdm check --platform stm32f746-qspi \
  --task ic=resnet8@10 --explore > "$threads1_out"
RTMDM_THREADS=8 ./target/release/rtmdm check --platform stm32f746-qspi \
  --task ic=resnet8@10 --explore > "$threads8_out"
set -e
cmp -s "$threads1_out" "$threads8_out" || {
  echo "explore smoke: output differs between 1 and 8 threads" >&2; exit 1; }
rm -f "$fork_report" "$fork_witness" "$replay_report" "$replay_witness" \
  "$threads1_out" "$threads8_out"
./target/release/rtmdm check --explain RTM050 > "$explore_out"
grep -q 'RTM050' "$explore_out" || {
  echo "explore smoke: --explain RTM050 failed" >&2; exit 1; }
if ./target/release/rtmdm check --explain RTM999 2> /dev/null; then
  echo "explore smoke: unknown rule unexpectedly explained" >&2; exit 1
fi
rm -f "$explore_out" "$witness_out"

echo "== rtmdm serve smoke =="
# Three-line JSONL batch through the admission service: a well-formed
# admit, a malformed line (must yield an error record, not kill the
# stream or the exit code), and an infeasible spec (must reject with
# findings). A repeated run must be byte-identical — the warm-equals-
# cold invariant's CLI-level corollary (DESIGN.md §2.6).
serve_in="$(mktemp)"
serve_out="$(mktemp)"
serve_out2="$(mktemp)"
cat > "$serve_in" <<'JSONL'
{"id":"q-admit","platform":"stm32f746-qspi","options":{},"tasks":[{"name":"kws","model":"ds-cnn","period_us":100000}]}
{this line is not json}
{"id":"q-reject","platform":"stm32f746-qspi","options":{},"tasks":[{"name":"ae","model":"autoencoder","period_us":4000}]}
JSONL
./target/release/rtmdm serve --once --input "$serve_in" > "$serve_out"
[[ "$(wc -l < "$serve_out")" -eq 3 ]] || {
  echo "serve smoke: expected 3 response lines" >&2; exit 1; }
grep -q '"id":"q-admit".*"verdict":"admit"' "$serve_out" || {
  echo "serve smoke: well-formed query did not admit" >&2; exit 1; }
grep -q '"ok":false' "$serve_out" || {
  echo "serve smoke: malformed line produced no error record" >&2; exit 1; }
grep -q '"id":"q-reject".*"verdict":"reject"' "$serve_out" || {
  echo "serve smoke: infeasible query did not reject" >&2; exit 1; }
./target/release/rtmdm serve --once --input "$serve_in" > "$serve_out2"
cmp "$serve_out" "$serve_out2" || {
  echo "serve smoke: repeated runs are not byte-identical" >&2; exit 1; }
rm -f "$serve_in" "$serve_out" "$serve_out2"

echo "CI green."
