#!/usr/bin/env bash
# Local CI: the exact gate .github/workflows/ci.yml runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo clippy =="
cargo clippy --all-targets --workspace -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo doc (obs) =="
RUSTDOCFLAGS="-D warnings" cargo doc -q -p rtmdm-obs --no-deps

echo "== rtmdm trace smoke =="
trace_out="$(mktemp)"
./target/release/rtmdm trace --platform stm32f746-qspi --task kws=ds-cnn@100 \
  --seconds 1 --out "$trace_out" --format chrome --gantt
# The export must re-parse through the bundled serde_json (the test
# binary below does exactly that against the golden scenario too).
cargo test -q --test observability chrome_export_round_trips_through_serde_json
rm -f "$trace_out"

echo "CI green."
