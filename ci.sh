#!/usr/bin/env bash
# Local CI: the exact gate .github/workflows/ci.yml runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo clippy =="
cargo clippy --all-targets --workspace -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "CI green."
